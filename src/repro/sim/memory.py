"""Byte-addressable sparse memory with a configurable access latency.

The paper's Figures 2 and 3 sweep the data-memory latency: L1 = 1 cycle
(a tightly-coupled data memory / level-1 cache hit), L2 = 10 cycles and
L3 = 100 cycles.  The latency lives here as a property of the memory;
the timing model charges it per data access.
"""

from __future__ import annotations

from typing import Dict

from .. import ReproError

_PAGE_BITS = 12
_PAGE_SIZE = 1 << _PAGE_BITS
_PAGE_MASK = _PAGE_SIZE - 1

#: Named latency levels from the paper (Section V-B).
LATENCY_LEVELS = {"L1": 1, "L2": 10, "L3": 100}


class MemoryAccessError(ReproError):
    """Access outside the 32-bit physical address space.

    Carries the faulting address, size and access kind (``'load'`` or
    ``'store'``) so the simulator can map it to the right mcause code
    and fill ``mtval``.
    """

    def __init__(self, message: str, addr: int = 0, size: int = 0,
                 access: str = "load"):
        super().__init__(message)
        self.addr = addr
        self.size = size
        self.access = access


def __getattr__(name: str):
    # Deprecated alias of :class:`MemoryAccessError` (pre-1.1 name),
    # kept importable but warning on access.
    if name == "MemoryError_":
        import warnings

        warnings.warn(
            "MemoryError_ is deprecated; use MemoryAccessError",
            DeprecationWarning,
            stacklevel=2,
        )
        return MemoryAccessError
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class Memory:
    """Sparse paged memory, little-endian, 32-bit address space."""

    def __init__(self, latency: int = 1):
        if latency < 1:
            raise ValueError("memory latency must be at least 1 cycle")
        self.latency = latency
        self._pages: Dict[int, bytearray] = {}

    # ------------------------------------------------------------------
    def _page(self, addr: int) -> bytearray:
        page = self._pages.get(addr >> _PAGE_BITS)
        if page is None:
            page = bytearray(_PAGE_SIZE)
            self._pages[addr >> _PAGE_BITS] = page
        return page

    @staticmethod
    def _check(addr: int, size: int, access: str = "load") -> None:
        if addr < 0 or addr + size > (1 << 32):
            raise MemoryAccessError(
                f"{access} at {addr:#x} (+{size}) out of range",
                addr=addr, size=size, access=access,
            )

    # ------------------------------------------------------------------
    # Scalar accesses
    # ------------------------------------------------------------------
    def read(self, addr: int, size: int) -> int:
        """Read ``size`` bytes as an unsigned little-endian integer."""
        self._check(addr, size)
        if (addr & _PAGE_MASK) + size <= _PAGE_SIZE:
            page = self._page(addr)
            off = addr & _PAGE_MASK
            return int.from_bytes(page[off:off + size], "little")
        return int.from_bytes(self.read_block(addr, size), "little")

    def write(self, addr: int, value: int, size: int) -> None:
        """Write ``size`` bytes little-endian (value is masked)."""
        self._check(addr, size, access="store")
        data = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        if (addr & _PAGE_MASK) + size <= _PAGE_SIZE:
            page = self._page(addr)
            off = addr & _PAGE_MASK
            page[off:off + size] = data
        else:
            self.write_block(addr, data)

    def read_u8(self, addr: int) -> int:
        return self.read(addr, 1)

    def read_u16(self, addr: int) -> int:
        return self.read(addr, 2)

    def read_u32(self, addr: int) -> int:
        return self.read(addr, 4)

    def write_u8(self, addr: int, value: int) -> None:
        self.write(addr, value, 1)

    def write_u16(self, addr: int, value: int) -> None:
        self.write(addr, value, 2)

    def write_u32(self, addr: int, value: int) -> None:
        self.write(addr, value, 4)

    # ------------------------------------------------------------------
    # Bulk accesses (program loading, array staging)
    # ------------------------------------------------------------------
    def read_block(self, addr: int, size: int) -> bytes:
        self._check(addr, size)
        out = bytearray()
        while size:
            off = addr & _PAGE_MASK
            chunk = min(size, _PAGE_SIZE - off)
            out += self._page(addr)[off:off + chunk]
            addr += chunk
            size -= chunk
        return bytes(out)

    def write_block(self, addr: int, data: bytes) -> None:
        self._check(addr, len(data), access="store")
        offset = 0
        while offset < len(data):
            off = (addr + offset) & _PAGE_MASK
            chunk = min(len(data) - offset, _PAGE_SIZE - off)
            self._page(addr + offset)[off:off + chunk] = data[
                offset:offset + chunk
            ]
            offset += chunk
