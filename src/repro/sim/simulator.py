"""Top-level fetch/decode/execute loop (the PULP-virtual-platform stand-in).

The simulator loads an assembled :class:`~repro.isa.assembler.Program`,
runs from an entry symbol to a sentinel return address, and produces a
:class:`~repro.sim.tracer.Trace` with cycle and instruction-mix
statistics.  Decoded instructions are cached per address, and compressed
parcels are expanded on fetch (RISCY does the same in its decoder).

Guest misbehaviour never escapes :meth:`Simulator.run` as a host
exception: undecodable words, unimplemented CSR accesses and
out-of-range loads/stores all take the architectural trap path
(:mod:`repro.sim.traps`), latching ``mcause``/``mepc``/``mtval`` and
returning a :class:`RunResult` with ``exit_reason='trap'``.  Runaway
programs end with ``exit_reason='budget_exceeded'`` instead of an
exception, so sweep drivers can record the outcome and move on.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - the sim layer never imports it
    from ..profile.collector import ProfileCollector as ProfileSink

from .. import ReproError
from ..isa.assembler import Program
from ..isa.compressed import (
    IllegalCompressed,
    compressed_alias_spec,
    expand_with_mnemonic,
)
from ..isa.disassembler import disassemble, format_instr
from ..isa.encoding import is_compressed
from ..isa.instructions import Instr, UnknownInstruction, decode
from .csr import IllegalCsr
from .executor import EbreakTrap, EcallTrap, execute
from .machine import MASK32, Machine
from .memory import Memory, MemoryAccessError
from .timing import CycleBreakdown, TimingConfig, TimingModel
from .tracer import Trace
from .traps import (
    CAUSE_ILLEGAL_INSTRUCTION,
    CAUSE_INSTRUCTION_ACCESS_FAULT,
    CAUSE_LOAD_ACCESS_FAULT,
    CAUSE_STORE_ACCESS_FAULT,
    ArchitecturalTrap,
    TrapInfo,
)

#: The sentinel return address that terminates a run (aligned, outside
#: any mapped program region).
HALT_ADDRESS = 0xFFFF_FF00

#: Default stack top (grows downward, far from text and data).
STACK_TOP = 0x00F0_0000

#: Exit reasons a finished run can report.
EXIT_REASONS = ("halt", "ecall", "ebreak", "trap", "budget_exceeded")

#: Hook called before each instruction: ``hook(simulator, executed)``.
StepHook = Callable[["Simulator", int], None]


def _fast_path_default() -> bool:
    """Resolve the ``REPRO_FAST_PATH`` environment knob (on by default)."""
    value = os.environ.get("REPRO_FAST_PATH", "1").strip().lower()
    return value not in ("0", "off", "false", "no")


class SimulationError(ReproError):
    """Host-side misuse of the simulator (e.g. no program loaded)."""


@dataclass
class RunResult:
    """Outcome of one :meth:`Simulator.run` call."""

    trace: Trace
    exit_reason: str  # one of :data:`EXIT_REASONS`
    machine: Machine
    trap: Optional[TrapInfo] = None  #: populated when exit_reason='trap'
    detail: str = ""  #: extra context for abnormal exits

    @property
    def cycles(self) -> int:
        return self.trace.cycles

    @property
    def instret(self) -> int:
        return self.trace.instret

    @property
    def ok(self) -> bool:
        """True when the guest ran to a voluntary exit."""
        return self.exit_reason in ("halt", "ecall", "ebreak")


class Simulator:
    """An RV32IMFC + smallFloat instruction-set simulator."""

    def __init__(
        self,
        program: Optional[Program] = None,
        mem_latency: Optional[int] = None,
        merged_regfile: bool = True,
        flen: int = 32,
        timing: Optional[TimingConfig] = None,
        fast_path: Optional[bool] = None,
    ):
        # Copy the caller's TimingConfig: the simulator owns its timing
        # state and must not mutate (or alias) an object it was handed.
        if timing is not None:
            timing_config = TimingConfig(
                mem_latency=timing.mem_latency,
                branch_taken_penalty=timing.branch_taken_penalty,
                jump_penalty=timing.jump_penalty,
                int_div_cycles=timing.int_div_cycles,
                fdiv_cycles=dict(timing.fdiv_cycles),
                fsqrt_cycles=dict(timing.fsqrt_cycles),
            )
        else:
            timing_config = TimingConfig()
        if mem_latency is None:
            mem_latency = timing_config.mem_latency
        else:
            timing_config.mem_latency = mem_latency
        memory = Memory(latency=mem_latency)
        self.machine = Machine(memory, merged_regfile=merged_regfile, flen=flen)
        self.timing = TimingModel(timing_config)
        self.program: Optional[Program] = None
        self._decode_cache: Dict[int, Tuple[Instr, int]] = {}
        #: Use the predecoded block engine when the run has no
        #: step hook or profile sink.  ``None`` defers to the
        #: ``REPRO_FAST_PATH`` environment variable (on by default);
        #: the differential tests pin both values explicitly.
        self.fast_path = (_fast_path_default() if fast_path is None
                          else fast_path)
        self._block_engine = None  # built lazily on first fast run
        if program is not None:
            self.load(program)

    # ------------------------------------------------------------------
    def load(self, program: Program) -> None:
        """Load text and data sections into memory."""
        self.program = program
        self._decode_cache.clear()
        if self._block_engine is not None:
            self._block_engine.invalidate()
        if program.words:
            # One bulk store of the packed text section: the per-word
            # write_u32 loop paid a bounds check and a page lookup per
            # instruction, which dominated load time for large kernels.
            text = struct.pack(f"<{len(program.words)}I", *program.words)
            self.machine.memory.write_block(program.text_base, text)
        if program.data:
            self.machine.memory.write_block(program.data_base, bytes(program.data))

    def address_of(self, entry: Union[str, int]) -> int:
        if isinstance(entry, int):
            return entry
        if self.program is None:
            raise SimulationError("no program loaded")
        return self.program.address_of(entry)

    def invalidate_decode(self, addr: Optional[int] = None) -> None:
        """Drop cached decodes (one address, or all of them).

        Fault injectors that corrupt fetched instruction words call this
        so the next fetch re-decodes the modified memory.  Both possible
        parcel start addresses covering ``addr`` are dropped.
        """
        if addr is None:
            self._decode_cache.clear()
            if self._block_engine is not None:
                self._block_engine.invalidate()
            return
        for start in (addr & ~1, (addr & ~1) - 2):
            self._decode_cache.pop(start, None)
        if self._block_engine is not None:
            self._block_engine.invalidate(addr)

    # ------------------------------------------------------------------
    def _fetch(self, pc: int) -> Tuple[Instr, int]:
        cached = self._decode_cache.get(pc)
        if cached is not None:
            return cached
        parcel = self.machine.memory.read_u16(pc)
        if is_compressed(parcel):
            # Expand in the decoder (as RISCY does), but keep the
            # canonical ``c.*`` mnemonic on the decoded instruction so
            # traces stay faithful to the fetched stream; the spec's
            # ``kind``/format metadata is the expanded instruction's,
            # so classification falls through to it unchanged.
            name, word = expand_with_mnemonic(parcel)
            instr = decode(word)
            instr.spec = compressed_alias_spec(name, instr.spec)
            size = 2
        else:
            instr = decode(self.machine.memory.read_u32(pc))
            size = 4
        instr.size = size  # type: ignore[attr-defined]
        self._decode_cache[pc] = (instr, size)
        return instr, size

    # ------------------------------------------------------------------
    def _take_trap(self, cause: int, tval: int, detail: str,
                   instr: Optional[Instr] = None) -> TrapInfo:
        """Latch trap CSRs and build the diagnostic record."""
        machine = self.machine
        machine.csr.set_trap(cause, machine.pc, tval)
        text: Optional[str] = None
        if instr is not None:
            text = format_instr(instr, machine.pc)
        elif cause == CAUSE_ILLEGAL_INSTRUCTION and tval:
            text = disassemble(tval, machine.pc)
        return TrapInfo(
            cause=cause,
            mepc=machine.pc,
            mtval=tval & MASK32,
            instruction=text,
            detail=detail,
        )

    # ------------------------------------------------------------------
    def run(
        self,
        entry: Union[str, int] = 0,
        args: Optional[Dict[int, int]] = None,
        max_instructions: int = 50_000_000,
        trace: Optional[Trace] = None,
        step_hook: Optional[StepHook] = None,
        profile: Optional["ProfileSink"] = None,
    ) -> RunResult:
        """Run from ``entry`` until the sentinel return address.

        ``args`` maps integer register numbers to initial values (the
        harness passes pointers and sizes in a0-a7 this way).  The run
        behaves like a call: ``ra`` is pointed at :data:`HALT_ADDRESS`
        so a final ``ret`` ends the simulation.

        ``step_hook(sim, executed)`` is invoked before every fetch --
        the fault-injection subsystem uses it to flip architectural bits
        at a scheduled instruction index.

        ``profile`` is an optional cycle-attribution sink (a
        :class:`repro.profile.ProfileCollector`): when given, each
        retired instruction is reported with its stall cause from
        :meth:`TimingModel.breakdown` instead of an opaque total.  The
        hook is guarded -- when ``profile`` is ``None`` the loop takes
        the exact pre-existing path, so profiling adds zero overhead
        (and zero cycle-count drift) to unprofiled runs.

        The returned :class:`RunResult` always reflects how the run
        ended; guest faults surface as ``exit_reason='trap'`` with a
        populated :class:`~repro.sim.traps.TrapInfo`, never as a host
        exception, and exceeding ``max_instructions`` reports
        ``exit_reason='budget_exceeded'``.
        """
        machine = self.machine
        machine.pc = self.address_of(entry)
        machine.write_x(1, HALT_ADDRESS)  # ra
        machine.write_x(2, STACK_TOP)  # sp
        for reg, value in (args or {}).items():
            machine.write_x(reg, value)

        stats = trace if trace is not None else Trace()
        machine.csr.cycle_source = lambda: stats.cycles
        machine.csr.instret_source = lambda: stats.instret
        if profile is not None:
            profile.begin(self)

        executed = 0
        outcome = None
        if self.fast_path and step_hook is None and profile is None:
            # Block dispatch: bit-identical statistics, deferred until
            # the engine returns.  A ``None`` outcome means the engine
            # hit something it does not handle (undecodable word,
            # unimplemented kind, budget edge) and the reference loop
            # must finish the run from the current machine state.
            outcome, executed = self._engine().run(stats, max_instructions)
        if outcome is None:
            outcome = self._run_reference(
                stats, executed, max_instructions, step_hook, profile)
        exit_reason, detail, trap_info = outcome

        if profile is not None:
            profile.end(exit_reason)
        if trap_info is not None:
            detail = str(trap_info)
        return RunResult(trace=stats, exit_reason=exit_reason,
                         machine=machine, trap=trap_info, detail=detail)

    # ------------------------------------------------------------------
    def resume(
        self,
        trace: Trace,
        executed: int = 0,
        max_instructions: int = 50_000_000,
    ) -> RunResult:
        """Continue a run from the *current* machine state.

        The lockstep engine (:mod:`repro.sim.lockstep`) drains diverged
        lanes by materializing their machine state and partial
        :class:`Trace` into a fresh simulator and handing the remainder
        of the run to this method.  Unlike :meth:`run` it performs no
        entry/``ra``/``sp``/argument setup: ``machine.pc`` and the
        register file are taken as-is, ``trace`` keeps accumulating, and
        ``executed`` instructions already count against the budget (so a
        later budget-exceeded detail reports the original total).
        """
        stats = trace
        machine = self.machine
        machine.csr.cycle_source = lambda: stats.cycles
        machine.csr.instret_source = lambda: stats.instret
        outcome = None
        if self.fast_path:
            outcome, executed = self._engine().run(
                stats, max_instructions, executed=executed)
        if outcome is None:
            outcome = self._run_reference(
                stats, executed, max_instructions, None, None)
        exit_reason, detail, trap_info = outcome
        if trap_info is not None:
            detail = str(trap_info)
        return RunResult(trace=stats, exit_reason=exit_reason,
                        machine=machine, trap=trap_info, detail=detail)

    # ------------------------------------------------------------------
    def _engine(self):
        """The lazily constructed block engine for this simulator."""
        if self._block_engine is None:
            from .blocks import BlockEngine

            self._block_engine = BlockEngine(self)
        return self._block_engine

    # ------------------------------------------------------------------
    def _resolve_exec_fault(
        self, exc: BaseException, instr: Instr,
    ) -> Tuple[str, Optional[TrapInfo], bool]:
        """Map an execute-stage exception to its run outcome.

        Returns ``(exit_reason, trap_info, retires)`` where ``retires``
        is True for voluntary exits (``ecall``/``ebreak``) whose
        instruction still counts as retired with a 1-cycle cost.  The
        isinstance checks mirror the historical ``except`` arm order so
        both execution paths resolve overlapping exception types
        identically; ``machine.pc`` must already point at the faulting
        instruction (it feeds ``mepc``).
        """
        if isinstance(exc, EcallTrap):
            return "ecall", None, True
        if isinstance(exc, EbreakTrap):
            return "ebreak", None, True
        if isinstance(exc, ArchitecturalTrap):
            return "trap", self._take_trap(
                exc.cause, exc.tval, exc.detail, instr=instr), False
        if isinstance(exc, IllegalCsr):
            return "trap", self._take_trap(
                CAUSE_ILLEGAL_INSTRUCTION, instr.word, str(exc),
                instr=instr), False
        if isinstance(exc, MemoryAccessError):
            cause = (CAUSE_STORE_ACCESS_FAULT if exc.access == "store"
                     else CAUSE_LOAD_ACCESS_FAULT)
            return "trap", self._take_trap(
                cause, exc.addr, str(exc), instr=instr), False
        # ValueError: reserved rounding modes and format/FLEN mismatches
        # are illegal instructions architecturally.
        return "trap", self._take_trap(
            CAUSE_ILLEGAL_INSTRUCTION, instr.word, str(exc),
            instr=instr), False

    # ------------------------------------------------------------------
    def _run_reference(
        self,
        stats: Trace,
        executed: int,
        max_instructions: int,
        step_hook: Optional[StepHook],
        profile: Optional["ProfileSink"],
    ) -> Tuple[str, str, Optional[TrapInfo]]:
        """The per-instruction interpreter (ground truth for the fast path).

        ``executed`` carries the retire count accumulated by the block
        engine when this loop finishes a partially fast-pathed run, so
        the instruction budget spans both phases exactly.
        """
        machine = self.machine
        exit_reason = "halt"
        detail = ""
        trap_info: Optional[TrapInfo] = None
        while machine.pc != HALT_ADDRESS:
            if executed >= max_instructions:
                exit_reason = "budget_exceeded"
                detail = (f"exceeded {max_instructions} instructions at "
                          f"pc={machine.pc:#x}")
                break
            if step_hook is not None:
                step_hook(self, executed)
                if machine.pc == HALT_ADDRESS:  # hook redirected to halt
                    break

            # Fetch + decode: undecodable or unfetchable words trap.
            try:
                instr, size = self._fetch(machine.pc)
            except (UnknownInstruction, IllegalCompressed) as exc:
                word = self._raw_parcel(machine.pc)
                trap_info = self._take_trap(
                    CAUSE_ILLEGAL_INSTRUCTION, word, str(exc))
                exit_reason = "trap"
                break
            except MemoryAccessError as exc:
                trap_info = self._take_trap(
                    CAUSE_INSTRUCTION_ACCESS_FAULT, exc.addr, str(exc))
                exit_reason = "trap"
                break

            fallthrough = (machine.pc + size) & MASK32
            pc_before = machine.pc
            try:
                next_pc = execute(machine, instr)
            except (EcallTrap, EbreakTrap, ArchitecturalTrap, IllegalCsr,
                    MemoryAccessError, ValueError) as exc:
                exit_reason, trap_info, retires = self._resolve_exec_fault(
                    exc, instr)
                if retires:
                    if profile is not None:
                        profile.on_retire(pc_before, instr, CycleBreakdown(1))
                    stats.record(instr, 1, pc=pc_before)
                break
            # Any redirect counts as taken (even a branch to pc+4: the
            # pipeline still flushes).
            taken = next_pc is not None
            if profile is None:
                cost = self.timing.cycles(instr, taken=taken)
            else:
                split = self.timing.breakdown(instr, taken=taken)
                cost = split.total
                profile.on_retire(pc_before, instr, split)
            stats.record(instr, cost, taken, pc=pc_before)
            machine.pc = next_pc if next_pc is not None else fallthrough
            executed += 1
        return exit_reason, detail, trap_info

    # ------------------------------------------------------------------
    def _raw_parcel(self, pc: int) -> int:
        """Best-effort read of the faulting instruction word for mtval."""
        try:
            parcel = self.machine.memory.read_u16(pc)
            if is_compressed(parcel):
                return parcel
            return self.machine.memory.read_u32(pc)
        except MemoryAccessError:
            return 0
