"""Top-level fetch/decode/execute loop (the PULP-virtual-platform stand-in).

The simulator loads an assembled :class:`~repro.isa.assembler.Program`,
runs from an entry symbol to a sentinel return address, and produces a
:class:`~repro.sim.tracer.Trace` with cycle and instruction-mix
statistics.  Decoded instructions are cached per address, and compressed
parcels are expanded on fetch (RISCY does the same in its decoder).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from ..isa.assembler import Program
from ..isa.compressed import expand
from ..isa.encoding import is_compressed
from ..isa.instructions import Instr, decode
from .executor import EbreakTrap, EcallTrap, execute
from .machine import MASK32, Machine
from .memory import Memory
from .timing import TimingConfig, TimingModel
from .tracer import Trace

#: The sentinel return address that terminates a run (aligned, outside
#: any mapped program region).
HALT_ADDRESS = 0xFFFF_FF00

#: Default stack top (grows downward, far from text and data).
STACK_TOP = 0x00F0_0000


class SimulationError(Exception):
    """Runaway or faulting simulation."""


@dataclass
class RunResult:
    """Outcome of one :meth:`Simulator.run` call."""

    trace: Trace
    exit_reason: str  # 'halt', 'ecall', 'ebreak'
    machine: Machine

    @property
    def cycles(self) -> int:
        return self.trace.cycles

    @property
    def instret(self) -> int:
        return self.trace.instret


class Simulator:
    """An RV32IMFC + smallFloat instruction-set simulator."""

    def __init__(
        self,
        program: Program = None,
        mem_latency: int = 1,
        merged_regfile: bool = True,
        flen: int = 32,
        timing: TimingConfig = None,
    ):
        memory = Memory(latency=mem_latency)
        timing_config = timing or TimingConfig()
        timing_config.mem_latency = mem_latency
        self.machine = Machine(memory, merged_regfile=merged_regfile, flen=flen)
        self.timing = TimingModel(timing_config)
        self.program: Optional[Program] = None
        self._decode_cache: Dict[int, Tuple[Instr, int]] = {}
        if program is not None:
            self.load(program)

    # ------------------------------------------------------------------
    def load(self, program: Program) -> None:
        """Load text and data sections into memory."""
        self.program = program
        self._decode_cache.clear()
        for index, word in enumerate(program.words):
            self.machine.memory.write_u32(program.text_base + 4 * index, word)
        if program.data:
            self.machine.memory.write_block(program.data_base, bytes(program.data))

    def address_of(self, entry: Union[str, int]) -> int:
        if isinstance(entry, int):
            return entry
        if self.program is None:
            raise SimulationError("no program loaded")
        return self.program.address_of(entry)

    # ------------------------------------------------------------------
    def _fetch(self, pc: int) -> Tuple[Instr, int]:
        cached = self._decode_cache.get(pc)
        if cached is not None:
            return cached
        parcel = self.machine.memory.read_u16(pc)
        if is_compressed(parcel):
            instr = decode(expand(parcel))
            size = 2
        else:
            instr = decode(self.machine.memory.read_u32(pc))
            size = 4
        instr.size = size  # type: ignore[attr-defined]
        self._decode_cache[pc] = (instr, size)
        return instr, size

    # ------------------------------------------------------------------
    def run(
        self,
        entry: Union[str, int] = 0,
        args: Dict[int, int] = None,
        max_instructions: int = 50_000_000,
        trace: Trace = None,
    ) -> RunResult:
        """Run from ``entry`` until the sentinel return address.

        ``args`` maps integer register numbers to initial values (the
        harness passes pointers and sizes in a0-a7 this way).  The run
        behaves like a call: ``ra`` is pointed at :data:`HALT_ADDRESS`
        so a final ``ret`` ends the simulation.
        """
        machine = self.machine
        machine.pc = self.address_of(entry)
        machine.write_x(1, HALT_ADDRESS)  # ra
        machine.write_x(2, STACK_TOP)  # sp
        for reg, value in (args or {}).items():
            machine.write_x(reg, value)

        stats = trace if trace is not None else Trace()
        machine.csr.cycle_source = lambda: stats.cycles
        machine.csr.instret_source = lambda: stats.instret

        exit_reason = "halt"
        executed = 0
        while machine.pc != HALT_ADDRESS:
            if executed >= max_instructions:
                raise SimulationError(
                    f"exceeded {max_instructions} instructions at "
                    f"pc={machine.pc:#x}"
                )
            instr, size = self._fetch(machine.pc)
            fallthrough = (machine.pc + size) & MASK32
            try:
                next_pc = execute(machine, instr)
            except EcallTrap:
                stats.record(instr, 1)
                exit_reason = "ecall"
                break
            except EbreakTrap:
                stats.record(instr, 1)
                exit_reason = "ebreak"
                break
            # Any redirect counts as taken (even a branch to pc+4: the
            # pipeline still flushes).
            taken = next_pc is not None
            stats.record(instr, self.timing.cycles(instr, taken=taken), taken)
            machine.pc = next_pc if next_pc is not None else fallthrough
            executed += 1
        return RunResult(trace=stats, exit_reason=exit_reason, machine=machine)
