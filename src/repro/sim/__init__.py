"""Instruction-set simulator with a RISCY-like cycle model."""

from .csr import CsrFile, IllegalCsr
from .executor import EbreakTrap, EcallTrap, execute
from .machine import Machine
from .memory import LATENCY_LEVELS, Memory
from .simulator import (
    HALT_ADDRESS,
    STACK_TOP,
    RunResult,
    SimulationError,
    Simulator,
)
from .timing import TimingConfig, TimingModel
from .tracer import CATEGORIES, Trace, classify

__all__ = [
    "CsrFile",
    "IllegalCsr",
    "EbreakTrap",
    "EcallTrap",
    "execute",
    "Machine",
    "LATENCY_LEVELS",
    "Memory",
    "HALT_ADDRESS",
    "STACK_TOP",
    "RunResult",
    "SimulationError",
    "Simulator",
    "TimingConfig",
    "TimingModel",
    "CATEGORIES",
    "Trace",
    "classify",
]
