"""Instruction-set simulator with a RISCY-like cycle model."""

from .csr import CsrFile, IllegalCsr
from .executor import EbreakTrap, EcallTrap, execute
from .machine import Machine
from .memory import LATENCY_LEVELS, Memory, MemoryAccessError
from .simulator import (
    EXIT_REASONS,
    HALT_ADDRESS,
    STACK_TOP,
    RunResult,
    SimulationError,
    Simulator,
)
from .timing import STALL_CAUSES, CycleBreakdown, TimingConfig, TimingModel
from .tracer import CATEGORIES, Trace, classify
from .traps import (
    CAUSE_ILLEGAL_INSTRUCTION,
    CAUSE_INSTRUCTION_ACCESS_FAULT,
    CAUSE_LOAD_ACCESS_FAULT,
    CAUSE_NAMES,
    CAUSE_STORE_ACCESS_FAULT,
    ArchitecturalTrap,
    TrapInfo,
)

__all__ = [
    "CsrFile",
    "IllegalCsr",
    "EbreakTrap",
    "EcallTrap",
    "execute",
    "Machine",
    "LATENCY_LEVELS",
    "Memory",
    "MemoryAccessError",
    "MemoryError_",
    "EXIT_REASONS",
    "HALT_ADDRESS",
    "STACK_TOP",
    "RunResult",
    "SimulationError",
    "Simulator",
    "STALL_CAUSES",
    "CycleBreakdown",
    "TimingConfig",
    "TimingModel",
    "CATEGORIES",
    "Trace",
    "classify",
    "CAUSE_ILLEGAL_INSTRUCTION",
    "CAUSE_INSTRUCTION_ACCESS_FAULT",
    "CAUSE_LOAD_ACCESS_FAULT",
    "CAUSE_STORE_ACCESS_FAULT",
    "CAUSE_NAMES",
    "ArchitecturalTrap",
    "TrapInfo",
]


def __getattr__(name: str):
    # The deprecated pre-1.1 MemoryError_ alias is resolved lazily so
    # that merely importing repro.sim does not warn; accessing it does.
    if name == "MemoryError_":
        from . import memory

        return memory.MemoryError_
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
