"""Predecoded basic-block fast path for the simulator.

The reference interpreter in :mod:`repro.sim.simulator` pays, per
retired instruction: a decode-cache lookup, a handler-table lookup, a
seven-arm ``try/except`` fence, a ``TimingModel`` cost resolution, a
:func:`~repro.sim.tracer.classify` call and five Counter updates.  None
of that work depends on run-time state -- it is a pure function of the
instruction word -- so this module resolves all of it once, at decode
time, and caches the result as a *basic block*: a straight-line run of
pre-bound closures ending at the first control-flow or CSR instruction.

Dispatch then executes whole blocks in a tight loop:

* the exception fence is hoisted to block granularity (one ``try`` per
  block instead of one per instruction);
* per-instruction statistics are *deferred*: the hot loop only bumps a
  per-block execution counter plus the two CSR-visible scalars
  (``cycles``/``instret``), and the full per-mnemonic / per-category /
  per-PC counters are materialized when the run ends;
* the hottest RV32I kinds get specialized closures with operands,
  immediates and (for PC-relative instructions) absolute targets baked
  in, skipping the generic operand-field attribute loads.

The result is bit-identical to the reference interpreter -- same
cycles, instret, fcsr flags, exit reason, trap CSRs, and the same
:class:`~repro.sim.tracer.Trace` down to Counter *insertion order*
(the energy model's float accumulation iterates ``by_mnemonic`` in
insertion order, so even that must match).  Deferred counters are
flushed in first-execution order, which reproduces first-retire order
exactly because a block's first execution retires its instructions
consecutively.

Blocks end at: control-flow instructions (kept as a *terminator* whose
taken/not-taken costs are both precomputed), CSR accesses (they may
read ``mcycle``/``minstret`` and so need exact intermediate counts),
undecodable or unimplemented instructions (the dispatcher falls back to
the reference loop, which raises the architectural trap), and a length
cap.  The engine also refuses to start a block that could cross the
instruction budget; the reference loop finishes such runs with its
exact per-instruction watchdog semantics.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

from ..fp import arith, compare, registry, simd
from ..fp.flags import ALL as FFLAGS_MASK
from ..fp.rounding import RoundingMode
from ..isa.compressed import IllegalCompressed
from ..isa.instructions import Instr, UnknownInstruction
from .csr import IllegalCsr
from .executor import EbreakTrap, EcallTrap, handler_for
from .machine import MASK32
from .memory import MemoryAccessError
from .tracer import classify
from .traps import ArchitecturalTrap

#: Upper bound on entries per block.  Long straight-line runs simply
#: split into consecutive blocks; the cap bounds the stat-recording
#: work a mid-block trap has to replay.
MAX_BLOCK_LEN = 64

#: Exceptions guest execution can raise (the reference loop's fence).
GUEST_FAULTS = (EcallTrap, EbreakTrap, ArchitecturalTrap, IllegalCsr,
                MemoryAccessError, ValueError)

#: CSR-accessing kinds terminate blocks: they can observe the cycle and
#: instret counters, which the fast path only keeps exact at block
#: boundaries.
_CSR_KINDS = frozenset(
    {"csrrw", "csrrs", "csrrc", "csrrwi", "csrrsi", "csrrci"})

_SENTINEL = 0xFFFF_FF00  # HALT_ADDRESS (simulator.py re-exports it)


class Block:
    """One predecoded straight-line run plus an optional terminator."""

    __slots__ = (
        "start", "end", "extent", "entries", "costs", "index_of",
        "mnem_counts", "cat_counts", "pc_list", "mem_count",
        "static_cycles", "n_entries", "term", "total_len",
    )

    def __init__(self, start: int):
        self.start = start
        #: Fallthrough PC after the last entry (when there is no term).
        self.end = start
        #: One past the last byte of any parcel in the block (for
        #: address-ranged invalidation).
        self.extent = start
        #: ``(fn, instr, pc)`` per straight-line instruction.
        self.entries: List[Tuple] = []
        #: Per-entry cycle cost (parallel to ``entries``).
        self.costs: List[int] = []
        #: PC -> entry index, for mid-block fault recovery.
        self.index_of: Dict[int, int] = {}
        self.mnem_counts: Counter = Counter()
        self.cat_counts: Counter = Counter()
        self.pc_list: List[int] = []
        self.mem_count = 0
        self.static_cycles = 0
        self.n_entries = 0
        #: ``(fn, instr, pc, fallthrough, cost_ntaken, cost_taken,
        #: mnemonic, category)`` or ``None``.
        self.term: Optional[Tuple] = None
        self.total_len = 0


class BlockEngine:
    """Owns the block cache of one :class:`~repro.sim.simulator.Simulator`."""

    def __init__(self, sim):
        self.sim = sim
        self._cache: Dict[int, Block] = {}
        self._timing_key = None

    # ------------------------------------------------------------------
    # Cache maintenance
    # ------------------------------------------------------------------
    def invalidate(self, addr: Optional[int] = None) -> None:
        """Drop cached blocks (all of them, or those covering ``addr``).

        Mirrors :meth:`Simulator.invalidate_decode`: a corrupted byte at
        ``addr`` can change any parcel starting at ``addr & ~1`` or two
        bytes earlier, so every block whose extent overlaps that window
        is dropped and will be rebuilt from the (also invalidated)
        decode cache on its next dispatch.
        """
        if addr is None:
            self._cache.clear()
            return
        low = (addr & ~1) - 2
        stale = [start for start, block in self._cache.items()
                 if block.start <= addr and low < block.extent]
        for start in stale:
            del self._cache[start]

    def cached_blocks(self) -> int:
        """Number of currently cached blocks (introspection/tests)."""
        return len(self._cache)

    def _check_timing_epoch(self) -> None:
        """Flush every block if the timing configuration changed.

        Static costs are baked into blocks at decode time; mutating the
        simulator's :class:`TimingConfig` between runs must not leave
        stale costs behind.
        """
        key = self.sim.timing.config.snapshot_key()
        if key != self._timing_key:
            self._cache.clear()
            self._timing_key = key

    # ------------------------------------------------------------------
    # Block construction
    # ------------------------------------------------------------------
    def _build(self, pc: int) -> Optional[Block]:
        sim = self.sim
        machine = sim.machine
        timing = sim.timing
        block = Block(pc)
        addr = pc
        while block.n_entries < MAX_BLOCK_LEN:
            try:
                instr, size = sim._fetch(addr)
            except (UnknownInstruction, IllegalCompressed,
                    MemoryAccessError):
                # Undecodable or unfetchable: end the block here; the
                # dispatcher falls back to the reference loop, which
                # takes the architectural trap with exact semantics.
                break
            kind = instr.kind
            fn = handler_for(kind)
            if fn is None:
                break  # reference loop raises the illegal-instr trap
            spec = instr.spec
            if spec.cf is not None or kind in _CSR_KINDS:
                fast = _bind_fast(kind, instr, machine, addr)
                block.term = (
                    fast if fast is not None else fn,
                    instr, addr, (addr + size) & MASK32,
                    timing.cycles(instr, taken=False),
                    timing.cycles(instr, taken=True),
                    instr.mnemonic, classify(instr),
                )
                block.extent = addr + size
                break
            fast = _bind_fast(kind, instr, machine, addr)
            category = classify(instr)
            cost = timing.cycles(instr, taken=False)
            block.index_of[addr] = block.n_entries
            block.entries.append((fast if fast is not None else fn,
                                  instr, addr))
            block.costs.append(cost)
            block.mnem_counts[instr.mnemonic] += 1
            block.cat_counts[category] += 1
            block.pc_list.append(addr)
            if category in ("load", "store"):
                block.mem_count += 1
            block.static_cycles += cost
            block.n_entries += 1
            addr += size
            block.end = addr & MASK32
            block.extent = addr
        block.total_len = block.n_entries + (1 if block.term else 0)
        if block.total_len == 0:
            return None
        return block

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def run(self, stats, max_instructions: int, executed: int = 0):
        """Execute blocks until exit, fault, or fallback.

        Returns ``(outcome, executed)`` where ``outcome`` is an
        ``(exit_reason, detail, trap_info)`` triple, or ``None`` when
        the caller should continue in the reference loop from the
        current machine state with ``executed`` instructions already
        retired.  A non-zero starting ``executed`` resumes a run whose
        earlier instructions already retired elsewhere (the lockstep
        engine drains lanes this way), keeping budget accounting and
        the budget-exceeded message anchored to the original total.
        """
        sim = self.sim
        machine = sim.machine
        self._check_timing_epoch()
        cache = self._cache
        counts: Dict[int, List[int]] = {}  # start -> [execs, takens]
        order: List[int] = []

        while machine.pc != _SENTINEL:
            pc = machine.pc
            if executed >= max_instructions:
                self._flush(stats, counts, order)
                return ("budget_exceeded",
                        f"exceeded {max_instructions} instructions at "
                        f"pc={pc:#x}", None), executed
            block = cache.get(pc)
            if block is None:
                block = self._build(pc)
                if block is None:
                    break  # reference loop resolves the trap exactly
                cache[pc] = block
            if executed + block.total_len > max_instructions:
                break  # per-instruction watchdog needs the reference loop
            rec = counts.get(pc)
            if rec is None:
                rec = counts[pc] = [0, 0]
                order.append(pc)

            # ----------------------------------------------------------
            # Straight-line entries: handlers only, one shared fence.
            # ----------------------------------------------------------
            try:
                for fn, instr, epc in block.entries:
                    machine.pc = epc
                    fn(machine, instr)
            except GUEST_FAULTS as exc:
                idx = block.index_of[machine.pc]
                self._flush(stats, counts, order)
                self._record_entries(stats, block, idx)
                faulting = block.entries[idx][1]
                reason, trap_info, retires = sim._resolve_exec_fault(
                    exc, faulting)
                if retires:  # pragma: no cover - entries never ecall
                    stats.record(faulting, 1, pc=machine.pc)
                return (reason, "", trap_info), executed + idx

            n = block.n_entries
            stats.instret += n
            stats.cycles += block.static_cycles
            executed += n
            term = block.term
            if term is None:
                machine.pc = block.end
                rec[0] += 1
                continue

            # ----------------------------------------------------------
            # Terminator: control flow or CSR access, cost depends on
            # the taken path.  CSR reads of cycle/instret observe the
            # exact counts because the prefix was just added above.
            # ----------------------------------------------------------
            (tfn, tinstr, tpc, fallthrough,
             cost_nt, cost_tk, _mnem, _cat) = term
            machine.pc = tpc
            try:
                next_pc = tfn(machine, tinstr)
            except GUEST_FAULTS as exc:
                # The prefix scalars were added above (CSR terminators
                # must observe them); back them out before re-recording
                # the prefix entry by entry.
                stats.instret -= n
                stats.cycles -= block.static_cycles
                self._flush(stats, counts, order)
                self._record_entries(stats, block, n)
                reason, trap_info, retires = sim._resolve_exec_fault(
                    exc, tinstr)
                if retires:
                    stats.record(tinstr, 1, pc=tpc)
                return (reason, "", trap_info), executed
            if next_pc is not None:
                stats.cycles += cost_tk
                rec[1] += 1
                machine.pc = next_pc
            else:
                stats.cycles += cost_nt
                machine.pc = fallthrough
            stats.instret += 1
            rec[0] += 1
            executed += 1

        self._flush(stats, counts, order)
        if machine.pc == _SENTINEL:
            return ("halt", "", None), executed
        return None, executed  # continue in the reference loop

    # ------------------------------------------------------------------
    # Deferred-statistics materialization
    # ------------------------------------------------------------------
    def _flush(self, stats, counts: Dict[int, List[int]],
               order: List[int]) -> None:
        """Materialize deferred counters into ``stats``.

        Iterating blocks in first-execution order, entries before the
        terminator, reproduces the reference interpreter's Counter
        insertion order exactly (first executions retire consecutively,
        and only first executions insert new keys).
        """
        by_mnem = stats.by_mnemonic
        by_cat = stats.by_category
        pc_counts = stats.pc_counts
        cache = self._cache
        for start in order:
            execs, takens = counts[start]
            if not execs:
                continue
            block = cache[start]
            for mnem, c in block.mnem_counts.items():
                by_mnem[mnem] += c * execs
            for cat, c in block.cat_counts.items():
                by_cat[cat] += c * execs
            for pc in block.pc_list:
                pc_counts[pc] += execs
            stats.mem_accesses += block.mem_count * execs
            term = block.term
            if term is not None:
                mnem, cat = term[6], term[7]
                by_mnem[mnem] += execs
                by_cat[cat] += execs
                pc_counts[term[2]] += execs
                stats.branches_taken += takens
        counts.clear()
        order.clear()

    def _record_entries(self, stats, block: Block, upto: int) -> None:
        """Record entries ``[0, upto)`` one by one (mid-block faults)."""
        costs = block.costs
        for idx in range(upto):
            fn, instr, pc = block.entries[idx]
            stats.record(instr, costs[idx], pc=pc)


# ----------------------------------------------------------------------
# Specialized closures for the hottest kinds
# ----------------------------------------------------------------------
# Each binder takes (instr, machine, pc) and returns a drop-in handler
# ``fn(machine, instr)`` with the operand fields (and, for PC-relative
# instructions, the absolute target) closed over, or ``None`` to keep
# the generic handler.  Bindings assume the default machine
# configuration (merged register file); binders that would change
# semantics elsewhere bail out to the generic handler.

def _signed(value: int) -> int:
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


def _nop(m, i):
    return None


def _bind_lui(i, m, pc):
    rd = i.rd
    if rd == 0:
        return _nop
    value = (i.imm << 12) & MASK32

    def run(m, _i, rd=rd, value=value):
        m.xregs[rd] = value
    return run


def _bind_auipc(i, m, pc):
    rd = i.rd
    if rd == 0:
        return _nop
    value = (pc + (i.imm << 12)) & MASK32

    def run(m, _i, rd=rd, value=value):
        m.xregs[rd] = value
    return run


def _bind_addi(i, m, pc):
    rd, rs1, imm = i.rd, i.rs1, i.imm
    if rd == 0:
        return _nop

    def run(m, _i, rd=rd, rs1=rs1, imm=imm):
        m.xregs[rd] = (m.xregs[rs1] + imm) & MASK32
    return run


def _bind_logic_imm(op):
    def bind(i, m, pc):
        rd, rs1 = i.rd, i.rs1
        imm = i.imm & MASK32
        if rd == 0:
            return _nop

        def run(m, _i, rd=rd, rs1=rs1, imm=imm, op=op):
            m.xregs[rd] = op(m.xregs[rs1], imm)
        return run
    return bind


def _bind_slti(i, m, pc):
    rd, imm, rs1 = i.rd, i.imm, i.rs1
    if rd == 0:
        return _nop

    def run(m, _i, rd=rd, rs1=rs1, imm=imm):
        m.xregs[rd] = 1 if _signed(m.xregs[rs1]) < imm else 0
    return run


def _bind_sltiu(i, m, pc):
    rd, rs1 = i.rd, i.rs1
    imm = i.imm & MASK32
    if rd == 0:
        return _nop

    def run(m, _i, rd=rd, rs1=rs1, imm=imm):
        m.xregs[rd] = 1 if m.xregs[rs1] < imm else 0
    return run


def _bind_shift_imm(kind):
    def bind(i, m, pc):
        rd, rs1 = i.rd, i.rs1
        sh = i.imm & 31
        if rd == 0:
            return _nop
        if kind == "slli":
            def run(m, _i, rd=rd, rs1=rs1, sh=sh):
                m.xregs[rd] = (m.xregs[rs1] << sh) & MASK32
        elif kind == "srli":
            def run(m, _i, rd=rd, rs1=rs1, sh=sh):
                m.xregs[rd] = m.xregs[rs1] >> sh
        else:  # srai
            def run(m, _i, rd=rd, rs1=rs1, sh=sh):
                m.xregs[rd] = (_signed(m.xregs[rs1]) >> sh) & MASK32
        return run
    return bind


def _bind_rr(expr):
    """Register-register ALU binder; ``expr(a, b)`` is pre-masked."""
    def bind(i, m, pc):
        rd, rs1, rs2 = i.rd, i.rs1, i.rs2
        if rd == 0:
            return _nop

        def run(m, _i, rd=rd, rs1=rs1, rs2=rs2, expr=expr):
            x = m.xregs
            x[rd] = expr(x[rs1], x[rs2])
        return run
    return bind


def _bind_load(size, signed_bits):
    def bind(i, m, pc):
        rd, rs1, imm = i.rd, i.rs1, i.imm
        mem = m.memory

        def run(m, _i, rd=rd, rs1=rs1, imm=imm, mem=mem):
            value = mem.read((m.xregs[rs1] + imm) & MASK32, size)
            if signed_bits and value & signed_bits:
                value = (value - (signed_bits << 1)) & MASK32
            if rd:
                m.xregs[rd] = value
        return run
    return bind


def _bind_store(size):
    def bind(i, m, pc):
        rs1, rs2, imm = i.rs1, i.rs2, i.imm
        mem = m.memory

        def run(m, _i, rs1=rs1, rs2=rs2, imm=imm, mem=mem):
            mem.write((m.xregs[rs1] + imm) & MASK32, m.xregs[rs2], size)
        return run
    return bind


def _bind_flw(i, m, pc):
    if not m.merged_regfile or m.flen != 32:
        return None
    from .executor import _WIDTH_BYTES

    size = _WIDTH_BYTES(i.spec.fp_fmt)
    rd, rs1, imm = i.rd, i.rs1, i.imm
    mem = m.memory

    def run(m, _i, rd=rd, rs1=rs1, imm=imm, mem=mem, size=size):
        value = mem.read((m.xregs[rs1] + imm) & MASK32, size)
        if rd:
            m.xregs[rd] = value
    return run


def _bind_fsw(i, m, pc):
    if not m.merged_regfile or m.flen != 32:
        return None
    from .executor import _WIDTH_BYTES

    size = _WIDTH_BYTES(i.spec.fp_fmt)
    mask = (1 << (8 * size)) - 1
    rs1, rs2, imm = i.rs1, i.rs2, i.imm
    mem = m.memory

    def run(m, _i, rs1=rs1, rs2=rs2, imm=imm, mem=mem, size=size,
            mask=mask):
        mem.write((m.xregs[rs1] + imm) & MASK32, m.xregs[rs2] & mask, size)
    return run


def _bind_branch(cond):
    """``cond(a, b)`` on raw 32-bit register values decides taken."""
    def bind(i, m, pc):
        rs1, rs2 = i.rs1, i.rs2
        target = (pc + i.imm) & MASK32

        def run(m, _i, rs1=rs1, rs2=rs2, target=target, cond=cond):
            x = m.xregs
            return target if cond(x[rs1], x[rs2]) else None
        return run
    return bind


def _bind_jal(i, m, pc):
    rd = i.rd
    target = (pc + i.imm) & MASK32
    link = (pc + getattr(i, "size", 4)) & MASK32

    def run(m, _i, rd=rd, target=target, link=link):
        if rd:
            m.xregs[rd] = link
        return target
    return run


def _bind_jalr(i, m, pc):
    rd, rs1, imm = i.rd, i.rs1, i.imm
    link = (pc + getattr(i, "size", 4)) & MASK32

    def run(m, _i, rd=rd, rs1=rs1, imm=imm, link=link):
        target = (m.xregs[rs1] + imm) & ~1 & MASK32
        if rd:
            m.xregs[rd] = link
        return target
    return run


# ----------------------------------------------------------------------
# FP binders (merged regfile at FLEN=32 only, like flw/fsw: operands
# then live in ``xregs``).  The format, operand masks and -- when the
# instruction encodes a static mode -- the rounding mode are resolved
# at bind time.  A dynamic mode still reads ``fcsr.frm`` per execution:
# CSR writes terminate blocks, so frm is block-invariant but not
# run-invariant.  Reserved static rm encodings fall back to the generic
# handler, which raises with exact semantics.
# ----------------------------------------------------------------------
_DYN_RM = int(RoundingMode.DYN)
_RM_MEMBERS = {int(mode): mode for mode in RoundingMode}


def _resolve_static_rm(i):
    """``(usable, rm)``; ``rm`` None means read frm at execution time."""
    spec = i.spec
    if (spec.rm_fixed is not None or spec.vec or i.rm is None
            or i.rm == _DYN_RM):
        return True, None
    mode = _RM_MEMBERS.get(i.rm)
    if mode is None:
        return False, None  # reserved encoding
    return True, mode


def _fp_guard(i, m):
    if not m.merged_regfile or m.flen != 32:
        return None
    return registry.by_suffix(i.spec.fp_fmt)


def _bind_fp_binop(op):
    def bind(i, m, pc):
        fmt = _fp_guard(i, m)
        if fmt is None:
            return None
        usable, rm = _resolve_static_rm(i)
        if not usable:
            return None
        mask = fmt.bits_mask if fmt.width < 32 else MASK32
        rd, rs1, rs2 = i.rd, i.rs1, i.rs2
        if rm is None:
            def run(m, _i, op=op, fmt=fmt, mask=mask, rd=rd, rs1=rs1,
                    rs2=rs2):
                x = m.xregs
                csr = m.csr
                bits, flags = op(fmt, x[rs1] & mask, x[rs2] & mask,
                                 csr.rounding_mode)
                csr.fflags |= flags & FFLAGS_MASK
                if rd:
                    x[rd] = bits & mask
        else:
            def run(m, _i, op=op, fmt=fmt, mask=mask, rd=rd, rs1=rs1,
                    rs2=rs2, rm=rm):
                x = m.xregs
                bits, flags = op(fmt, x[rs1] & mask, x[rs2] & mask, rm)
                m.csr.fflags |= flags & FFLAGS_MASK
                if rd:
                    x[rd] = bits & mask
        return run
    return bind


def _bind_fp_fma(negate_product, negate_addend):
    def bind(i, m, pc):
        fmt = _fp_guard(i, m)
        if fmt is None:
            return None
        usable, rm = _resolve_static_rm(i)
        if not usable:
            return None
        mask = fmt.bits_mask if fmt.width < 32 else MASK32
        rd, rs1, rs2, rs3 = i.rd, i.rs1, i.rs2, i.rs3

        def run(m, _i, fmt=fmt, mask=mask, rd=rd, rs1=rs1, rs2=rs2,
                rs3=rs3, rm=rm, np_=negate_product, na=negate_addend):
            x = m.xregs
            csr = m.csr
            bits, flags = arith.ffma(
                fmt, x[rs1] & mask, x[rs2] & mask, x[rs3] & mask,
                csr.rounding_mode if rm is None else rm,
                negate_product=np_, negate_addend=na)
            csr.fflags |= flags & FFLAGS_MASK
            if rd:
                x[rd] = bits & mask
        return run
    return bind


def _bind_fp_noflags(op):
    """fmin/fmax-shaped ops without rm (op may still raise flags)."""
    def bind(i, m, pc):
        fmt = _fp_guard(i, m)
        if fmt is None:
            return None
        mask = fmt.bits_mask if fmt.width < 32 else MASK32
        rd, rs1, rs2 = i.rd, i.rs1, i.rs2

        def run(m, _i, op=op, fmt=fmt, mask=mask, rd=rd, rs1=rs1, rs2=rs2):
            x = m.xregs
            bits, flags = op(fmt, x[rs1] & mask, x[rs2] & mask)
            m.csr.fflags |= flags & FFLAGS_MASK
            if rd:
                x[rd] = bits & mask
        return run
    return bind


def _bind_fp_sign(op):
    def bind(i, m, pc):
        fmt = _fp_guard(i, m)
        if fmt is None:
            return None
        mask = fmt.bits_mask if fmt.width < 32 else MASK32
        rd, rs1, rs2 = i.rd, i.rs1, i.rs2

        def run(m, _i, op=op, fmt=fmt, mask=mask, rd=rd, rs1=rs1, rs2=rs2):
            x = m.xregs
            bits = op(fmt, x[rs1] & mask, x[rs2] & mask)
            if rd:
                x[rd] = bits & mask
        return run
    return bind


def _bind_fp_cmp(op):
    def bind(i, m, pc):
        fmt = _fp_guard(i, m)
        if fmt is None:
            return None
        mask = fmt.bits_mask if fmt.width < 32 else MASK32
        rd, rs1, rs2 = i.rd, i.rs1, i.rs2

        def run(m, _i, op=op, fmt=fmt, mask=mask, rd=rd, rs1=rs1, rs2=rs2):
            x = m.xregs
            result, flags = op(fmt, x[rs1] & mask, x[rs2] & mask)
            m.csr.fflags |= flags & FFLAGS_MASK
            if rd:
                x[rd] = result & MASK32
        return run
    return bind


def _vec_prep(i, m):
    """Shared vector-binder setup, or None when unbindable."""
    fmt = _fp_guard(i, m)
    if fmt is None or fmt.width >= 32:
        return None
    lanes = 32 // fmt.width
    repl_factor = None
    if i.spec.repl:
        repl_factor = sum(1 << (k * fmt.width) for k in range(lanes))
    return fmt, repl_factor


def _bind_vec_binop(op, with_rm=True):
    def bind(i, m, pc):
        prep = _vec_prep(i, m)
        if prep is None:
            return None
        fmt, repl_factor = prep
        fmt_mask = fmt.bits_mask
        rd, rs1, rs2 = i.rd, i.rs1, i.rs2

        def run(m, _i, op=op, fmt=fmt, fmt_mask=fmt_mask, rd=rd, rs1=rs1,
                rs2=rs2, repl_factor=repl_factor, with_rm=with_rm):
            x = m.xregs
            csr = m.csr
            b = x[rs2]
            if repl_factor is not None:
                b = (b & fmt_mask) * repl_factor
            if with_rm:
                bits, flags = op(fmt, 32, x[rs1], b, csr.rounding_mode)
            else:
                bits, flags = op(fmt, 32, x[rs1], b)
            csr.fflags |= flags & FFLAGS_MASK
            if rd:
                x[rd] = bits & MASK32
        return run
    return bind


def _bind_vfmac(i, m, pc):
    prep = _vec_prep(i, m)
    if prep is None:
        return None
    fmt, repl_factor = prep
    fmt_mask = fmt.bits_mask
    rd, rs1, rs2 = i.rd, i.rs1, i.rs2

    def run(m, _i, fmt=fmt, fmt_mask=fmt_mask, rd=rd, rs1=rs1, rs2=rs2,
            repl_factor=repl_factor):
        x = m.xregs
        csr = m.csr
        b = x[rs2]
        if repl_factor is not None:
            b = (b & fmt_mask) * repl_factor
        bits, flags = simd.vfmac(fmt, 32, x[rd], x[rs1], b,
                                 csr.rounding_mode)
        csr.fflags |= flags & FFLAGS_MASK
        if rd:
            x[rd] = bits & MASK32
    return run


_FAST_BINDERS = {
    "lui": _bind_lui,
    "auipc": _bind_auipc,
    "addi": _bind_addi,
    "slti": _bind_slti,
    "sltiu": _bind_sltiu,
    "xori": _bind_logic_imm(lambda a, b: a ^ b),
    "ori": _bind_logic_imm(lambda a, b: a | b),
    "andi": _bind_logic_imm(lambda a, b: a & b),
    "slli": _bind_shift_imm("slli"),
    "srli": _bind_shift_imm("srli"),
    "srai": _bind_shift_imm("srai"),
    "add": _bind_rr(lambda a, b: (a + b) & MASK32),
    "sub": _bind_rr(lambda a, b: (a - b) & MASK32),
    "sll": _bind_rr(lambda a, b: (a << (b & 31)) & MASK32),
    "slt": _bind_rr(lambda a, b: 1 if _signed(a) < _signed(b) else 0),
    "sltu": _bind_rr(lambda a, b: 1 if a < b else 0),
    "xor": _bind_rr(lambda a, b: a ^ b),
    "srl": _bind_rr(lambda a, b: a >> (b & 31)),
    "sra": _bind_rr(lambda a, b: (_signed(a) >> (b & 31)) & MASK32),
    "or": _bind_rr(lambda a, b: a | b),
    "and": _bind_rr(lambda a, b: a & b),
    "mul": _bind_rr(lambda a, b: (a * b) & MASK32),
    "mulh": _bind_rr(lambda a, b: ((_signed(a) * _signed(b)) >> 32) & MASK32),
    "mulhsu": _bind_rr(lambda a, b: ((_signed(a) * b) >> 32) & MASK32),
    "mulhu": _bind_rr(lambda a, b: ((a * b) >> 32) & MASK32),
    "lb": _bind_load(1, 0x80),
    "lh": _bind_load(2, 0x8000),
    "lw": _bind_load(4, 0),
    "lbu": _bind_load(1, 0),
    "lhu": _bind_load(2, 0),
    "sb": _bind_store(1),
    "sh": _bind_store(2),
    "sw": _bind_store(4),
    "flw": _bind_flw,
    "fsw": _bind_fsw,
    "beq": _bind_branch(lambda a, b: a == b),
    "bne": _bind_branch(lambda a, b: a != b),
    "blt": _bind_branch(lambda a, b: _signed(a) < _signed(b)),
    "bge": _bind_branch(lambda a, b: _signed(a) >= _signed(b)),
    "bltu": _bind_branch(lambda a, b: a < b),
    "bgeu": _bind_branch(lambda a, b: a >= b),
    "jal": _bind_jal,
    "jalr": _bind_jalr,
    "fadd": _bind_fp_binop(arith.fadd),
    "fsub": _bind_fp_binop(arith.fsub),
    "fmul": _bind_fp_binop(arith.fmul),
    "fdiv": _bind_fp_binop(arith.fdiv),
    "fmadd": _bind_fp_fma(False, False),
    "fmsub": _bind_fp_fma(False, True),
    "fnmsub": _bind_fp_fma(True, False),
    "fnmadd": _bind_fp_fma(True, True),
    "fmin": _bind_fp_noflags(compare.fmin),
    "fmax": _bind_fp_noflags(compare.fmax),
    "fsgnj": _bind_fp_sign(compare.fsgnj),
    "fsgnjn": _bind_fp_sign(compare.fsgnjn),
    "fsgnjx": _bind_fp_sign(compare.fsgnjx),
    "feq": _bind_fp_cmp(compare.feq),
    "flt": _bind_fp_cmp(compare.flt),
    "fle": _bind_fp_cmp(compare.fle),
    "vfadd": _bind_vec_binop(simd.vfadd),
    "vfsub": _bind_vec_binop(simd.vfsub),
    "vfmul": _bind_vec_binop(simd.vfmul),
    "vfdiv": _bind_vec_binop(simd.vfdiv),
    "vfmin": _bind_vec_binop(simd.vfmin, with_rm=False),
    "vfmax": _bind_vec_binop(simd.vfmax, with_rm=False),
    "vfmac": _bind_vfmac,
}


def _bind_fast(kind: str, instr: Instr, machine, pc: int):
    """Specialized closure for ``instr``, or ``None`` for the generic
    handler.  Loads and stores read ``machine.memory`` eagerly -- the
    simulator never swaps its memory object after construction."""
    binder = _FAST_BINDERS.get(kind)
    if binder is None:
        return None
    return binder(instr, machine, pc)
