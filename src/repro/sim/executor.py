"""Instruction semantics for RV32IM + F + the smallFloat extensions.

Handlers are registered per semantic ``kind`` (shared across formats:
``fadd`` serves fadd.s/.h/.ah/.b) and receive the machine plus the
decoded instruction.  A handler returns the next PC, or ``None`` to fall
through sequentially.  All FP arithmetic goes through the bit-exact
:mod:`repro.fp` core; accrued exception flags land in ``fcsr``.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..fp import arith, compare, registry, simd
from ..fp.convert import fcvt_f2f, fcvt_from_int, fcvt_to_int
from ..fp.formats import FORMATS_BY_SUFFIX
from ..fp.registry import NumberFormat
from ..fp.rounding import RoundingMode
from ..isa.instructions import Instr
from .machine import MASK32, Machine
from .traps import CAUSE_ILLEGAL_INSTRUCTION, ArchitecturalTrap


class EcallTrap(Exception):
    """Raised by ``ecall``; the simulator treats it as program exit."""


class EbreakTrap(Exception):
    """Raised by ``ebreak`` (breakpoint)."""


Handler = Callable[[Machine, Instr], Optional[int]]
_HANDLERS: Dict[str, Handler] = {}

_DYN_RM = int(RoundingMode.DYN)
_RM_BY_VALUE = {int(mode): mode for mode in RoundingMode}


def handler(kind: str) -> Callable[[Handler], Handler]:
    def wrap(fn: Handler) -> Handler:
        _HANDLERS[kind] = fn
        return fn
    return wrap


def handler_for(kind: str) -> Optional[Handler]:
    """The registered handler for ``kind``, or ``None``.

    The block engine predecodes handler bindings with this; an
    unimplemented kind ends the block so the reference loop raises the
    architectural trap with its exact diagnostics.
    """
    return _HANDLERS.get(kind)


def execute(machine: Machine, instr: Instr) -> Optional[int]:
    """Execute one decoded instruction; returns the next PC or None."""
    try:
        fn = _HANDLERS[instr.kind]
    except KeyError:
        raise ArchitecturalTrap(
            CAUSE_ILLEGAL_INSTRUCTION, tval=instr.word,
            detail=f"no semantics for {instr.mnemonic} "
                   f"(kind {instr.kind!r})",
        ) from None
    return fn(machine, instr)


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _signed(value: int) -> int:
    return value - (1 << 32) if value & 0x80000000 else value


def _fmt(instr: Instr) -> NumberFormat:
    return registry.by_suffix(instr.spec.fp_fmt)


def _src_fmt(instr: Instr) -> NumberFormat:
    return registry.by_suffix(instr.spec.src_fmt)


def _rm(machine: Machine, instr: Instr) -> RoundingMode:
    """Resolve the operating rounding mode.

    Alt-format instructions (rm field pinned to the format-select state)
    and vector instructions (no rm field at all) round via ``fcsr.frm``;
    otherwise ``rm == DYN`` defers to the CSR.
    """
    spec = instr.spec
    if spec.rm_fixed is not None or spec.vec or instr.rm is None:
        return machine.csr.rounding_mode
    if instr.rm == _DYN_RM:
        return machine.csr.rounding_mode
    mode = _RM_BY_VALUE.get(instr.rm)
    if mode is None:
        raise ValueError(f"{instr.rm} is not a valid RoundingMode")
    return mode


def _vec_b_operand(machine: Machine, instr: Instr, fmt: NumberFormat) -> int:
    """Second vector operand; ``.r`` variants replicate lane 0 of rs2."""
    value = machine.read_f(instr.rs2)
    if instr.spec.repl:
        return simd.replicate(value & fmt.bits_mask, fmt, machine.flen)
    return value


# ----------------------------------------------------------------------
# RV32I: ALU
# ----------------------------------------------------------------------
@handler("lui")
def _lui(m, i):
    m.write_x(i.rd, i.imm << 12)


@handler("auipc")
def _auipc(m, i):
    m.write_x(i.rd, (m.pc + (i.imm << 12)) & MASK32)


@handler("addi")
def _addi(m, i):
    m.write_x(i.rd, m.read_x(i.rs1) + i.imm)


@handler("slti")
def _slti(m, i):
    m.write_x(i.rd, int(m.read_x_signed(i.rs1) < i.imm))


@handler("sltiu")
def _sltiu(m, i):
    m.write_x(i.rd, int(m.read_x(i.rs1) < (i.imm & MASK32)))


@handler("xori")
def _xori(m, i):
    m.write_x(i.rd, m.read_x(i.rs1) ^ (i.imm & MASK32))


@handler("ori")
def _ori(m, i):
    m.write_x(i.rd, m.read_x(i.rs1) | (i.imm & MASK32))


@handler("andi")
def _andi(m, i):
    m.write_x(i.rd, m.read_x(i.rs1) & (i.imm & MASK32))


@handler("slli")
def _slli(m, i):
    m.write_x(i.rd, m.read_x(i.rs1) << (i.imm & 31))


@handler("srli")
def _srli(m, i):
    m.write_x(i.rd, m.read_x(i.rs1) >> (i.imm & 31))


@handler("srai")
def _srai(m, i):
    m.write_x(i.rd, m.read_x_signed(i.rs1) >> (i.imm & 31))


@handler("add")
def _add(m, i):
    m.write_x(i.rd, m.read_x(i.rs1) + m.read_x(i.rs2))


@handler("sub")
def _sub(m, i):
    m.write_x(i.rd, m.read_x(i.rs1) - m.read_x(i.rs2))


@handler("sll")
def _sll(m, i):
    m.write_x(i.rd, m.read_x(i.rs1) << (m.read_x(i.rs2) & 31))


@handler("slt")
def _slt(m, i):
    m.write_x(i.rd, int(m.read_x_signed(i.rs1) < m.read_x_signed(i.rs2)))


@handler("sltu")
def _sltu(m, i):
    m.write_x(i.rd, int(m.read_x(i.rs1) < m.read_x(i.rs2)))


@handler("xor")
def _xor(m, i):
    m.write_x(i.rd, m.read_x(i.rs1) ^ m.read_x(i.rs2))


@handler("srl")
def _srl(m, i):
    m.write_x(i.rd, m.read_x(i.rs1) >> (m.read_x(i.rs2) & 31))


@handler("sra")
def _sra(m, i):
    m.write_x(i.rd, m.read_x_signed(i.rs1) >> (m.read_x(i.rs2) & 31))


@handler("or")
def _or(m, i):
    m.write_x(i.rd, m.read_x(i.rs1) | m.read_x(i.rs2))


@handler("and")
def _and(m, i):
    m.write_x(i.rd, m.read_x(i.rs1) & m.read_x(i.rs2))


# ----------------------------------------------------------------------
# RV32I: control flow (jal/jalr link past the *actual* parcel size,
# which matters for expanded compressed instructions)
# ----------------------------------------------------------------------
@handler("jal")
def _jal(m, i):
    m.write_x(i.rd, m.pc + getattr(i, "size", 4))
    return (m.pc + i.imm) & MASK32


@handler("jalr")
def _jalr(m, i):
    target = (m.read_x(i.rs1) + i.imm) & ~1 & MASK32
    m.write_x(i.rd, m.pc + getattr(i, "size", 4))
    return target


def _branch(m, i, taken: bool) -> Optional[int]:
    if taken:
        return (m.pc + i.imm) & MASK32
    return None


@handler("beq")
def _beq(m, i):
    return _branch(m, i, m.read_x(i.rs1) == m.read_x(i.rs2))


@handler("bne")
def _bne(m, i):
    return _branch(m, i, m.read_x(i.rs1) != m.read_x(i.rs2))


@handler("blt")
def _blt(m, i):
    return _branch(m, i, m.read_x_signed(i.rs1) < m.read_x_signed(i.rs2))


@handler("bge")
def _bge(m, i):
    return _branch(m, i, m.read_x_signed(i.rs1) >= m.read_x_signed(i.rs2))


@handler("bltu")
def _bltu(m, i):
    return _branch(m, i, m.read_x(i.rs1) < m.read_x(i.rs2))


@handler("bgeu")
def _bgeu(m, i):
    return _branch(m, i, m.read_x(i.rs1) >= m.read_x(i.rs2))


# ----------------------------------------------------------------------
# RV32I: memory
# ----------------------------------------------------------------------
@handler("lb")
def _lb(m, i):
    value = m.memory.read_u8((m.read_x(i.rs1) + i.imm) & MASK32)
    m.write_x(i.rd, value - 0x100 if value & 0x80 else value)


@handler("lh")
def _lh(m, i):
    value = m.memory.read_u16((m.read_x(i.rs1) + i.imm) & MASK32)
    m.write_x(i.rd, value - 0x10000 if value & 0x8000 else value)


@handler("lw")
def _lw(m, i):
    m.write_x(i.rd, m.memory.read_u32((m.read_x(i.rs1) + i.imm) & MASK32))


@handler("lbu")
def _lbu(m, i):
    m.write_x(i.rd, m.memory.read_u8((m.read_x(i.rs1) + i.imm) & MASK32))


@handler("lhu")
def _lhu(m, i):
    m.write_x(i.rd, m.memory.read_u16((m.read_x(i.rs1) + i.imm) & MASK32))


@handler("sb")
def _sb(m, i):
    m.memory.write_u8((m.read_x(i.rs1) + i.imm) & MASK32, m.read_x(i.rs2))


@handler("sh")
def _sh(m, i):
    m.memory.write_u16((m.read_x(i.rs1) + i.imm) & MASK32, m.read_x(i.rs2))


@handler("sw")
def _sw(m, i):
    m.memory.write_u32((m.read_x(i.rs1) + i.imm) & MASK32, m.read_x(i.rs2))


# ----------------------------------------------------------------------
# M extension
# ----------------------------------------------------------------------
@handler("mul")
def _mul(m, i):
    m.write_x(i.rd, m.read_x(i.rs1) * m.read_x(i.rs2))


@handler("mulh")
def _mulh(m, i):
    m.write_x(i.rd, (m.read_x_signed(i.rs1) * m.read_x_signed(i.rs2)) >> 32)


@handler("mulhsu")
def _mulhsu(m, i):
    m.write_x(i.rd, (m.read_x_signed(i.rs1) * m.read_x(i.rs2)) >> 32)


@handler("mulhu")
def _mulhu(m, i):
    m.write_x(i.rd, (m.read_x(i.rs1) * m.read_x(i.rs2)) >> 32)


@handler("div")
def _div(m, i):
    a, b = m.read_x_signed(i.rs1), m.read_x_signed(i.rs2)
    if b == 0:
        m.write_x(i.rd, MASK32)  # -1
    elif a == -(1 << 31) and b == -1:
        m.write_x(i.rd, a)
    else:
        m.write_x(i.rd, int(a / b))  # truncating division


@handler("divu")
def _divu(m, i):
    a, b = m.read_x(i.rs1), m.read_x(i.rs2)
    m.write_x(i.rd, MASK32 if b == 0 else a // b)


@handler("rem")
def _rem(m, i):
    a, b = m.read_x_signed(i.rs1), m.read_x_signed(i.rs2)
    if b == 0:
        m.write_x(i.rd, a)
    elif a == -(1 << 31) and b == -1:
        m.write_x(i.rd, 0)
    else:
        m.write_x(i.rd, a - int(a / b) * b)


@handler("remu")
def _remu(m, i):
    a, b = m.read_x(i.rs1), m.read_x(i.rs2)
    m.write_x(i.rd, a if b == 0 else a % b)


# ----------------------------------------------------------------------
# System
# ----------------------------------------------------------------------
@handler("fence")
def _fence(m, i):
    return None


@handler("ecall")
def _ecall(m, i):
    raise EcallTrap()


@handler("ebreak")
def _ebreak(m, i):
    raise EbreakTrap()


def _csr_op(m, i, update):
    old = m.csr.read(i.imm)
    new = update(old)
    if new is not None:
        m.csr.write(i.imm, new)
    m.write_x(i.rd, old)


@handler("csrrw")
def _csrrw(m, i):
    _csr_op(m, i, lambda old: m.read_x(i.rs1))


@handler("csrrs")
def _csrrs(m, i):
    rs1 = m.read_x(i.rs1)
    _csr_op(m, i, lambda old: (old | rs1) if i.rs1 != 0 else None)


@handler("csrrc")
def _csrrc(m, i):
    rs1 = m.read_x(i.rs1)
    _csr_op(m, i, lambda old: (old & ~rs1) if i.rs1 != 0 else None)


@handler("csrrwi")
def _csrrwi(m, i):
    _csr_op(m, i, lambda old: i.rs1)


@handler("csrrsi")
def _csrrsi(m, i):
    _csr_op(m, i, lambda old: (old | i.rs1) if i.rs1 else None)


@handler("csrrci")
def _csrrci(m, i):
    _csr_op(m, i, lambda old: (old & ~i.rs1) if i.rs1 else None)


# ----------------------------------------------------------------------
# FP loads/stores
# ----------------------------------------------------------------------
def _WIDTH_BYTES(suffix: str) -> int:
    """Access width in bytes of an FP load/store operating on ``suffix``."""
    return registry.by_suffix(suffix).width // 8


@handler("flw")
def _flw(m, i):
    size = _WIDTH_BYTES(i.spec.fp_fmt)
    addr = (m.read_x(i.rs1) + i.imm) & MASK32
    m.write_f(i.rd, m.memory.read(addr, size), width=8 * size)


@handler("fsw")
def _fsw(m, i):
    size = _WIDTH_BYTES(i.spec.fp_fmt)
    addr = (m.read_x(i.rs1) + i.imm) & MASK32
    m.memory.write(addr, m.read_f(i.rs2, width=8 * size), size)


# ----------------------------------------------------------------------
# FP scalar arithmetic
# ----------------------------------------------------------------------
def _fp_binop(op):
    def run(m, i):
        fmt = _fmt(i)
        a = m.read_f(i.rs1, fmt.width)
        b = m.read_f(i.rs2, fmt.width)
        bits, flags = op(fmt, a, b, _rm(m, i))
        m.csr.accrue(flags)
        m.write_f(i.rd, bits, fmt.width)
    return run


_HANDLERS["fadd"] = _fp_binop(arith.fadd)
_HANDLERS["fsub"] = _fp_binop(arith.fsub)
_HANDLERS["fmul"] = _fp_binop(arith.fmul)
_HANDLERS["fdiv"] = _fp_binop(arith.fdiv)


@handler("fsqrt")
def _fsqrt(m, i):
    fmt = _fmt(i)
    bits, flags = arith.fsqrt(fmt, m.read_f(i.rs1, fmt.width), _rm(m, i))
    m.csr.accrue(flags)
    m.write_f(i.rd, bits, fmt.width)


def _fp_fma(negate_product: bool, negate_addend: bool):
    def run(m, i):
        fmt = _fmt(i)
        a = m.read_f(i.rs1, fmt.width)
        b = m.read_f(i.rs2, fmt.width)
        c = m.read_f(i.rs3, fmt.width)
        bits, flags = arith.ffma(
            fmt, a, b, c, _rm(m, i),
            negate_product=negate_product, negate_addend=negate_addend,
        )
        m.csr.accrue(flags)
        m.write_f(i.rd, bits, fmt.width)
    return run


_HANDLERS["fmadd"] = _fp_fma(False, False)
_HANDLERS["fmsub"] = _fp_fma(False, True)
_HANDLERS["fnmsub"] = _fp_fma(True, False)
_HANDLERS["fnmadd"] = _fp_fma(True, True)


def _fp_minmax(op):
    def run(m, i):
        fmt = _fmt(i)
        bits, flags = op(fmt, m.read_f(i.rs1, fmt.width),
                         m.read_f(i.rs2, fmt.width))
        m.csr.accrue(flags)
        m.write_f(i.rd, bits, fmt.width)
    return run


_HANDLERS["fmin"] = _fp_minmax(compare.fmin)
_HANDLERS["fmax"] = _fp_minmax(compare.fmax)


def _fp_sign(op):
    def run(m, i):
        fmt = _fmt(i)
        m.write_f(i.rd, op(fmt, m.read_f(i.rs1, fmt.width),
                           m.read_f(i.rs2, fmt.width)), fmt.width)
    return run


_HANDLERS["fsgnj"] = _fp_sign(compare.fsgnj)
_HANDLERS["fsgnjn"] = _fp_sign(compare.fsgnjn)
_HANDLERS["fsgnjx"] = _fp_sign(compare.fsgnjx)


def _fp_cmp(op):
    def run(m, i):
        fmt = _fmt(i)
        result, flags = op(fmt, m.read_f(i.rs1, fmt.width),
                           m.read_f(i.rs2, fmt.width))
        m.csr.accrue(flags)
        m.write_x(i.rd, result)
    return run


_HANDLERS["feq"] = _fp_cmp(compare.feq)
_HANDLERS["flt"] = _fp_cmp(compare.flt)
_HANDLERS["fle"] = _fp_cmp(compare.fle)


@handler("fclass")
def _fclass(m, i):
    fmt = _fmt(i)
    m.write_x(i.rd, compare.fclass(fmt, m.read_f(i.rs1, fmt.width)))


@handler("fmv_x_f")
def _fmv_x_f(m, i):
    fmt = _fmt(i)
    value = m.read_f(i.rs1, fmt.width)
    if fmt.width < 32:  # sign-extend per fmv.x.h convention
        sign = value & fmt.sign_mask
        if sign:
            value |= MASK32 & ~fmt.bits_mask
    m.write_x(i.rd, value)


@handler("fmv_f_x")
def _fmv_f_x(m, i):
    fmt = _fmt(i)
    m.write_f(i.rd, m.read_x(i.rs1) & fmt.bits_mask, fmt.width)


# ----------------------------------------------------------------------
# FP conversions
# ----------------------------------------------------------------------
@handler("fcvt_f2f")
def _fcvt_f2f(m, i):
    src, dst = _src_fmt(i), _fmt(i)
    bits, flags = fcvt_f2f(src, dst, m.read_f(i.rs1, src.width), _rm(m, i))
    m.csr.accrue(flags)
    m.write_f(i.rd, bits, dst.width)


def _fcvt_to_x(signed: bool):
    def run(m, i):
        fmt = _fmt(i)
        bits, flags = fcvt_to_int(fmt, m.read_f(i.rs1, fmt.width), _rm(m, i),
                                  signed=signed)
        m.csr.accrue(flags)
        m.write_x(i.rd, bits)
    return run


_HANDLERS["fcvt_w_f"] = _fcvt_to_x(True)
_HANDLERS["fcvt_wu_f"] = _fcvt_to_x(False)


def _fcvt_from_x(signed: bool):
    def run(m, i):
        fmt = _fmt(i)
        bits, flags = fcvt_from_int(fmt, m.read_x(i.rs1), _rm(m, i),
                                    signed=signed)
        m.csr.accrue(flags)
        m.write_f(i.rd, bits, fmt.width)
    return run


_HANDLERS["fcvt_f_w"] = _fcvt_from_x(True)
_HANDLERS["fcvt_f_wu"] = _fcvt_from_x(False)


# ----------------------------------------------------------------------
# Xfaux scalar expanding operations
# ----------------------------------------------------------------------
@handler("fmulex")
def _fmulex(m, i):
    src = _src_fmt(i)
    dst = FORMATS_BY_SUFFIX["s"]
    bits, flags = arith.fmul_widen(src, dst, m.read_f(i.rs1, src.width),
                                   m.read_f(i.rs2, src.width), _rm(m, i))
    m.csr.accrue(flags)
    m.write_f(i.rd, bits, dst.width)


@handler("fmacex")
def _fmacex(m, i):
    src = _src_fmt(i)
    dst = FORMATS_BY_SUFFIX["s"]
    acc = m.read_f(i.rd, dst.width)
    bits, flags = arith.fma_mixed(src, dst, m.read_f(i.rs1, src.width),
                                  m.read_f(i.rs2, src.width), acc, _rm(m, i))
    m.csr.accrue(flags)
    m.write_f(i.rd, bits, dst.width)


# ----------------------------------------------------------------------
# Xfvec packed-SIMD operations
# ----------------------------------------------------------------------
def _vec_binop(op, with_rm: bool = True):
    def run(m, i):
        fmt = _fmt(i)
        a = m.read_f(i.rs1)
        b = _vec_b_operand(m, i, fmt)
        if with_rm:
            bits, flags = op(fmt, m.flen, a, b, _rm(m, i))
        else:
            bits, flags = op(fmt, m.flen, a, b)
        m.csr.accrue(flags)
        m.write_f(i.rd, bits)
    return run


_HANDLERS["vfadd"] = _vec_binop(simd.vfadd)
_HANDLERS["vfsub"] = _vec_binop(simd.vfsub)
_HANDLERS["vfmul"] = _vec_binop(simd.vfmul)
_HANDLERS["vfdiv"] = _vec_binop(simd.vfdiv)
_HANDLERS["vfmin"] = _vec_binop(simd.vfmin, with_rm=False)
_HANDLERS["vfmax"] = _vec_binop(simd.vfmax, with_rm=False)


@handler("vfsqrt")
def _vfsqrt(m, i):
    fmt = _fmt(i)
    bits, flags = simd.vfsqrt(fmt, m.flen, m.read_f(i.rs1), _rm(m, i))
    m.csr.accrue(flags)
    m.write_f(i.rd, bits)


@handler("vfmac")
def _vfmac(m, i):
    fmt = _fmt(i)
    acc = m.read_f(i.rd)
    a = m.read_f(i.rs1)
    b = _vec_b_operand(m, i, fmt)
    bits, flags = simd.vfmac(fmt, m.flen, acc, a, b, _rm(m, i))
    m.csr.accrue(flags)
    m.write_f(i.rd, bits)


def _vec_sign(op):
    def run(m, i):
        fmt = _fmt(i)
        from ..fp.simd import join_lanes, split_lanes

        a = m.read_f(i.rs1)
        b = _vec_b_operand(m, i, fmt)
        out = [
            op(fmt, la, lb)
            for la, lb in zip(split_lanes(a, fmt, m.flen),
                              split_lanes(b, fmt, m.flen))
        ]
        m.write_f(i.rd, join_lanes(out, fmt, m.flen))
    return run


_HANDLERS["vfsgnj"] = _vec_sign(compare.fsgnj)
_HANDLERS["vfsgnjn"] = _vec_sign(compare.fsgnjn)
_HANDLERS["vfsgnjx"] = _vec_sign(compare.fsgnjx)


def _vec_cmp(op):
    def run(m, i):
        fmt = _fmt(i)
        mask, flags = op(fmt, m.flen, m.read_f(i.rs1),
                         _vec_b_operand(m, i, fmt))
        m.csr.accrue(flags)
        m.write_x(i.rd, mask)
    return run


_HANDLERS["vfeq"] = _vec_cmp(simd.vfeq)
_HANDLERS["vflt"] = _vec_cmp(simd.vflt)
_HANDLERS["vfle"] = _vec_cmp(simd.vfle)


def _vfcpk(pair_index: int):
    def run(m, i):
        dst = _fmt(i)
        src = _src_fmt(i)
        bits, flags = simd.vfcpk(
            dst, src, m.flen, m.read_f(i.rd),
            m.read_f(i.rs1, src.width), m.read_f(i.rs2, src.width),
            pair_index, _rm(m, i),
        )
        m.csr.accrue(flags)
        m.write_f(i.rd, bits)
    return run


_HANDLERS["vfcpka"] = _vfcpk(0)
_HANDLERS["vfcpkb"] = _vfcpk(1)


@handler("vfcvt_x_f")
def _vfcvt_x_f(m, i):
    fmt = _fmt(i)
    bits, flags = simd.vfcvt_to_int(fmt, m.flen, m.read_f(i.rs1), _rm(m, i))
    m.csr.accrue(flags)
    m.write_f(i.rd, bits)


@handler("vfcvt_f_x")
def _vfcvt_f_x(m, i):
    fmt = _fmt(i)
    bits, flags = simd.vfcvt_from_int(fmt, m.flen, m.read_f(i.rs1), _rm(m, i))
    m.csr.accrue(flags)
    m.write_f(i.rd, bits)


@handler("vfcvt_f2f")
def _vfcvt_f2f(m, i):
    src, dst = _src_fmt(i), _fmt(i)
    bits, flags = simd.vfcvt_f2f(src, dst, m.flen, m.read_f(i.rs1), _rm(m, i))
    m.csr.accrue(flags)
    m.write_f(i.rd, bits)


@handler("vfdotpex")
def _vfdotpex(m, i):
    src = _src_fmt(i)
    dst = FORMATS_BY_SUFFIX["s"]
    acc = m.read_f(i.rd, dst.width)
    a = m.read_f(i.rs1)
    b = _vec_b_operand(m, i, src)
    bits, flags = simd.vfdotpex(src, dst, m.flen, acc, a, b, _rm(m, i))
    m.csr.accrue(flags)
    m.write_f(i.rd, bits, dst.width)


@handler("vfdotpmx")
def _vfdotpmx(m, i):
    """Shared-exponent block dot product: rs1/rs2 each hold one packed
    block; the exact lane-product sum accumulates into a binary32 rd
    with a single rounding (dispatched to the source format's codec)."""
    src = _src_fmt(i)
    dst = FORMATS_BY_SUFFIX["s"]
    acc = m.read_f(i.rd, dst.width)
    a = m.read_f(i.rs1)
    b = m.read_f(i.rs2)
    bits, flags = src.block_dotp(acc, a, b, _rm(m, i))
    m.csr.accrue(flags)
    m.write_f(i.rd, bits, dst.width)
