"""Execution statistics: cycle counts and instruction-mix histograms.

The instruction classification feeds two artifacts:

* the instruction-count breakdown of paper Fig. 4 (load/store, ALU,
  conversions, scalar float, scalar/vector smallFloat...);
* the per-instruction energy model of :mod:`repro.energy`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..isa.instructions import Instr

#: Categories used in the Fig. 4-style breakdown, in display order.
CATEGORIES = [
    "load",
    "store",
    "alu",
    "mul",
    "div",
    "branch",
    "jump",
    "csr",
    "conv",
    "fp32",
    "fp16",
    "fp16alt",
    "fp8",
    "vfp16",
    "vfp16alt",
    "vfp8",
    "expand",
]

_LOAD = {"lb", "lh", "lw", "lbu", "lhu", "flw"}
_STORE = {"sb", "sh", "sw", "fsw"}
_BRANCH = {"beq", "bne", "blt", "bge", "bltu", "bgeu"}
_JUMP = {"jal", "jalr"}
_MUL = {"mul", "mulh", "mulhsu", "mulhu"}
_DIV = {"div", "divu", "rem", "remu"}
_CSR = {"csrrw", "csrrs", "csrrc", "csrrwi", "csrrsi", "csrrci"}
_CONV = {"fcvt_f2f", "fcvt_w_f", "fcvt_wu_f", "fcvt_f_w", "fcvt_f_wu",
         "vfcvt_x_f", "vfcvt_f_x", "vfcvt_f2f", "vfcpka", "vfcpkb",
         "fmv_x_f", "fmv_f_x"}
_EXPAND = {"fmulex", "fmacex", "vfdotpex"}

_FMT_CATEGORY = {"s": "fp32", "h": "fp16", "ah": "fp16alt", "b": "fp8"}
_VEC_CATEGORY = {"h": "vfp16", "ah": "vfp16alt", "b": "vfp8"}


def classify(instr: Instr) -> str:
    """Map a decoded instruction to its breakdown category.

    Compressed instructions classify exactly like their expansions: the
    simulator decodes RVC parcels to alias specs that keep the expanded
    spec's ``kind``/format metadata under the canonical ``c.*``
    mnemonic, and any bare ``c.*`` spec without that metadata falls
    back through :func:`repro.isa.compressed.compressed_base_spec`
    here.  Either way an RVC build's load/store/FP mix lands in the
    same Fig. 4 categories as the equivalent uncompressed stream.
    """
    spec = instr.spec
    kind = spec.kind
    if not kind and spec.mnemonic.startswith("c."):
        from ..isa.compressed import compressed_base_spec

        spec = compressed_base_spec(spec.mnemonic)
        kind = spec.kind
    if kind in _LOAD:
        return "load"
    if kind in _STORE:
        return "store"
    if kind in _BRANCH:
        return "branch"
    if kind in _JUMP:
        return "jump"
    if kind in _MUL:
        return "mul"
    if kind in _DIV:
        return "div"
    if kind in _CSR:
        return "csr"
    if kind in _EXPAND:
        return "expand"
    if kind in _CONV:
        return "conv"
    if spec.fp_fmt is not None:
        if spec.vec:
            return _VEC_CATEGORY.get(spec.fp_fmt, "vfp16")
        return _FMT_CATEGORY.get(spec.fp_fmt, "fp32")
    return "alu"


@dataclass
class Trace:
    """Accumulated execution statistics."""

    instret: int = 0
    cycles: int = 0
    by_mnemonic: Counter = field(default_factory=Counter)
    by_category: Counter = field(default_factory=Counter)
    mem_accesses: int = 0
    branches_taken: int = 0
    #: Execution count per instruction address.  Fed by the simulator;
    #: the static analyzer's trace-validation mode uses it to confirm
    #: that a statically flagged instruction is dynamically reachable.
    pc_counts: Counter = field(default_factory=Counter)

    def record(self, instr: Instr, cycles: int, taken: bool = False,
               pc: Optional[int] = None) -> None:
        self.instret += 1
        self.cycles += cycles
        self.by_mnemonic[instr.mnemonic] += 1
        category = classify(instr)
        self.by_category[category] += 1
        if category in ("load", "store"):
            self.mem_accesses += 1
        if taken:
            self.branches_taken += 1
        if pc is not None:
            self.pc_counts[pc] += 1

    def executed(self, pc: int) -> int:
        """How many times the instruction at ``pc`` retired."""
        return self.pc_counts.get(pc, 0)

    def breakdown(self) -> Dict[str, int]:
        """Instruction counts per category, in canonical order."""
        return {cat: self.by_category.get(cat, 0) for cat in CATEGORIES}

    def merged_breakdown(self) -> Dict[str, int]:
        """Coarser Fig. 4-style grouping (both 16-bit formats merged)."""
        fine = self.breakdown()
        return {
            "mem": fine["load"] + fine["store"],
            "alu": fine["alu"] + fine["mul"] + fine["div"] + fine["branch"]
            + fine["jump"] + fine["csr"],
            "conv": fine["conv"],
            "float": fine["fp32"],
            "float16": fine["fp16"] + fine["fp16alt"],
            "vfloat16": fine["vfp16"] + fine["vfp16alt"],
            "float8": fine["fp8"],
            "vfloat8": fine["vfp8"],
            "expand": fine["expand"],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Trace(instret={self.instret}, cycles={self.cycles})"
