"""Batched lockstep execution engine.

Runs N sweep points ("lanes") of the *same program* simultaneously.  All
lanes of a batch sit at the same PC and execute the same instruction
stream; only data differs between lanes, held as numpy arrays along the
batch axis (or plain python ints while still uniform).  Counters
(``cycles``, ``instret``, per-block execution counts) are kept uniform as
plain ints while every lane shares one history and promoted to per-lane
arrays after batches with different histories re-converge.

Dispatch reuses the predecoded basic blocks of :mod:`repro.sim.blocks`:
each block is bound once into a list of batched entry closures plus a
terminator, then executed once per batch instead of once per point.
Floating-point traffic goes through :mod:`repro.fp.batch` (vectorized IEEE
RNE with exact flag computation) when the format/rounding mode qualifies;
everything else falls back to the scalar core, executed per lane on a
scratch machine.

Divergence (different branch outcomes) splits a batch into sub-batches.
Live batches are scheduled min-PC-first off a heap; batches that meet at
the same PC are merged back into one ("re-convergence"), so short
data-dependent diamonds -- an ``if (x > best)`` update inside a loop --
cost two scheduler round-trips instead of fragmenting the batch for good.
Lanes that cannot continue in lockstep at all (traps, budget exhaustion,
divergent rounding modes, unsupported situations) are *drained*: their
state is materialized into a fresh scalar
:class:`~repro.sim.simulator.Simulator` which resumes execution on the
existing fast path.  The contract is bit-identical per point: traces
(including Counter insertion order), registers, memory, fcsr, exit reason
and detail strings match a per-point run exactly.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional

import numpy as np

from ..fp import arith, batch as fpbatch, compare, registry, simd
from ..fp.convert import fcvt_f2f as _fcvt_scalar
from ..fp.formats import FORMATS_BY_SUFFIX
from ..fp.rounding import RoundingMode, set_sr_key
from .blocks import GUEST_FAULTS, _CSR_KINDS as _CSR_TERM_KINDS, \
    _resolve_static_rm
from .csr import (CSR_CYCLE, CSR_CYCLEH, CSR_FCSR, CSR_FFLAGS, CSR_FRM,
                  CSR_INSTRET, CSR_INSTRETH, CSR_MHARTID, MASK32, CsrFile,
                  _RM_BY_VALUE)
from .executor import _HANDLERS, _WIDTH_BYTES
from .machine import Machine
from .memory import Memory
from .simulator import (HALT_ADDRESS, STACK_TOP, RunResult, SimulationError,
                        Simulator)
from .tracer import Trace

_SENTINEL = HALT_ADDRESS
_U32 = np.uint32
_U8 = np.uint8


class _Drain(Exception):
    """Raised by a binder when the batch cannot continue in lockstep.

    Must be raised *before* any batch state is mutated: the drain path
    re-executes the faulting instruction per lane on a fresh scalar
    simulator, so partial batched effects would double-apply.
    """


class _SplitMask:
    """Returned by a branch terminator when lanes diverge."""

    __slots__ = ("mask", "target")

    def __init__(self, mask: np.ndarray, target: int) -> None:
        self.mask = mask          # True = branch taken
        self.target = target


def _is_uniform(v) -> bool:
    return type(v) is int


def _devec(v):
    """Collapse a vector back to a python int if all lanes agree."""
    if type(v) is int:
        return v
    if v.size and (v == v[0]).all():
        return int(v[0])
    return v


_PAGE_BITS = 12
_PAGE_SIZE = 1 << _PAGE_BITS
_PAGE_MASK = _PAGE_SIZE - 1

_U16 = np.uint16


def _compose(chunk: np.ndarray, size: int) -> np.ndarray:
    """Little-endian compose a (b, size) uint8 byte block into (b,)
    uint32 values (sizes 1/2/4 reinterpret in place; odd sizes -- page
    straddle fragments -- fold byte by byte)."""
    if size == 4:
        return np.ascontiguousarray(chunk).view(_U32).ravel()
    if size == 2:
        return np.ascontiguousarray(chunk).view(_U16).ravel().astype(_U32)
    if size == 1:
        return chunk.ravel().astype(_U32)
    v = np.zeros(chunk.shape[0], dtype=_U32)
    for k in range(size):
        v |= chunk[:, k].astype(_U32) << _U32(8 * k)
    return v


def _decompose(value, size: int):
    """Value (int or (b,) uint32) -> little-endian uint8 byte rows that
    broadcast against a (b, size) destination."""
    if type(value) is int:
        return np.frombuffer(value.to_bytes(size, "little"), dtype=_U8)
    return np.ascontiguousarray(value).view(_U8).reshape(-1, 4)[:, :size]


class BatchMemory:
    """Sparse paged memory shared by *all* lanes of a lockstep run.

    Pages start as shared ``bytearray`` copies of the template machine's
    memory (uniform across lanes) and are promoted to ``(n, 4096)`` uint8
    arrays on the first divergent write.  Sub-batches address their rows
    through a global lane-index array (``idx``; ``None`` means the root
    batch covering every lane in order), so splitting and re-merging
    batches never copies memory.
    """

    def __init__(self, n: int, template_pages: Dict[int, bytearray]) -> None:
        self.n = n
        self.pages: Dict[int, object] = {
            pno: bytearray(pg) for pno, pg in template_pages.items()
        }
        self._all_lanes = np.arange(n)

    # -- helpers -----------------------------------------------------------

    def _promote(self, pno: int) -> np.ndarray:
        pg = self.pages.get(pno)
        if isinstance(pg, np.ndarray):
            return pg
        if pg is None:
            arr = np.zeros((self.n, _PAGE_SIZE), dtype=_U8)
        else:
            arr = np.tile(np.frombuffer(bytes(pg), dtype=_U8), (self.n, 1))
        self.pages[pno] = arr
        return arr

    # -- reads -------------------------------------------------------------

    def read(self, addr: int, size: int, idx=None):
        """Read ``size`` bytes at a uniform address for the lanes ``idx``
        (``None`` = every lane).

        Returns an int when the bytes are uniform across the addressed
        lanes, else a uint32 array of shape (len(idx),).
        """
        if addr + size > 1 << 32:
            raise _Drain()
        pno = addr >> _PAGE_BITS
        off = addr & _PAGE_MASK
        if off + size <= _PAGE_SIZE:
            pg = self.pages.get(pno)
            if pg is None:
                return 0
            if isinstance(pg, bytearray):
                return int.from_bytes(pg[off:off + size], "little")
            chunk = (pg[:, off:off + size] if idx is None
                     else pg[idx, off:off + size])
            return _devec(_compose(chunk, size))
        lo_sz = _PAGE_SIZE - off
        lo = self.read(addr, lo_sz, idx)
        hi = self.read(addr + lo_sz, size - lo_sz, idx)
        if _is_uniform(lo) and _is_uniform(hi):
            return lo | hi << (8 * lo_sz)
        b = self.n if idx is None else idx.size
        lo_v = lo if not _is_uniform(lo) else np.full(b, lo, dtype=_U32)
        hi_v = hi if not _is_uniform(hi) else np.full(b, hi, dtype=_U32)
        return lo_v | hi_v << _U32(8 * lo_sz)

    def gather(self, addrs: np.ndarray, size: int, idx=None):
        """Per-lane reads at divergent addresses.

        ``addrs`` is a (b,) uint32 array, one address per addressed lane
        (``idx``; ``None`` = every lane).  Returns the composed values,
        collapsed to an int when they happen to be uniform.
        """
        if int(addrs.max()) + size > 1 << 32:
            raise _Drain()  # some lane faults: scalar core raises it
        lanes = self._all_lanes if idx is None else idx
        offs = addrs & _U32(_PAGE_MASK)
        if int(offs.max()) + size <= _PAGE_SIZE:
            pnos = addrs >> _U32(_PAGE_BITS)
            if (pnos == pnos[0]).all():
                pg = self.pages.get(int(pnos[0]))
                if pg is None:
                    return 0
                cols = offs[:, None] + np.arange(size, dtype=_U32)
                if isinstance(pg, bytearray):
                    chunk = np.frombuffer(pg, dtype=_U8)[cols]
                else:
                    chunk = pg[lanes[:, None], cols]
                return _devec(_compose(chunk, size))
        # Lanes straddle pages (or an element crosses a page boundary):
        # resolve byte-by-byte, grouping lanes by page.
        out = np.zeros(addrs.size, dtype=_U32)
        a64 = addrs.astype(np.int64)
        for k in range(size):
            a = a64 + k
            pk = a >> _PAGE_BITS
            ok = a & _PAGE_MASK
            for pno in np.unique(pk):
                m = pk == pno
                pg = self.pages.get(int(pno))
                if pg is None:
                    continue
                if isinstance(pg, bytearray):
                    vals = np.frombuffer(pg, dtype=_U8)[ok[m]]
                else:
                    vals = pg[lanes[m], ok[m]]
                out[m] |= vals.astype(_U32) << _U32(8 * k)
        return _devec(out)

    # -- writes ------------------------------------------------------------

    def write(self, addr: int, value, size: int, idx=None) -> None:
        """Write ``size`` bytes at a uniform address for the lanes
        ``idx``; ``value`` is an int or a (len(idx),) uint32 array."""
        if addr + size > 1 << 32:
            raise _Drain()
        pno = addr >> _PAGE_BITS
        off = addr & _PAGE_MASK
        if off + size <= _PAGE_SIZE:
            if _is_uniform(value) and idx is None:
                pg = self.pages.get(pno)
                if pg is None:
                    pg = self.pages[pno] = bytearray(_PAGE_SIZE)
                if isinstance(pg, bytearray):
                    pg[off:off + size] = value.to_bytes(size, "little")
                    return
                pg[:, off:off + size] = _decompose(value, size)
                return
            # A sub-batch writes only its own rows (other lanes keep
            # the old bytes) and divergent values differ per row, so
            # the page must be per-lane either way.
            pg = self._promote(pno)
            if idx is None:
                pg[:, off:off + size] = _decompose(value, size)
            else:
                pg[idx, off:off + size] = _decompose(value, size)
            return
        lo_sz = _PAGE_SIZE - off
        if _is_uniform(value):
            self.write(addr, value & ((1 << (8 * lo_sz)) - 1), lo_sz, idx)
            self.write(addr + lo_sz, value >> (8 * lo_sz), size - lo_sz, idx)
        else:
            self.write(addr, value & _U32((1 << (8 * lo_sz)) - 1), lo_sz,
                       idx)
            self.write(addr + lo_sz, value >> _U32(8 * lo_sz),
                       size - lo_sz, idx)

    def scatter(self, addrs: np.ndarray, value, size: int, idx=None) -> None:
        """Per-lane writes at divergent addresses.

        ``addrs`` is (b,) uint32 for the lanes ``idx`` (``None`` = every
        lane); ``value`` is an int (uniform) or a (b,) uint32 array.
        Divergent addresses make the touched pages lane-dependent, so
        they are always promoted.
        """
        if int(addrs.max()) + size > 1 << 32:
            raise _Drain()  # some lane faults: scalar core raises it
        lanes = self._all_lanes if idx is None else idx
        uniform = type(value) is int
        offs = addrs & _U32(_PAGE_MASK)
        if int(offs.max()) + size <= _PAGE_SIZE:
            pnos = addrs >> _U32(_PAGE_BITS)
            if (pnos == pnos[0]).all():
                pg = self._promote(int(pnos[0]))
                cols = offs[:, None] + np.arange(size, dtype=_U32)
                pg[lanes[:, None], cols] = _decompose(value, size)
                return
        a64 = addrs.astype(np.int64)
        for k in range(size):
            a = a64 + k
            pk = a >> _PAGE_BITS
            ok = a & _PAGE_MASK
            if uniform:
                byte = (value >> (8 * k)) & 0xFF
            else:
                byte = ((value >> _U32(8 * k)) & _U32(0xFF)).astype(_U8)
            for pno in np.unique(pk):
                m = pk == pno
                pg = self._promote(int(pno))
                pg[lanes[m], ok[m]] = byte if uniform else byte[m]

    def write_lane(self, lane: int, addr: int, data: bytes) -> None:
        """Write raw bytes into a single lane (staging only)."""
        pos = 0
        while pos < len(data):
            a = addr + pos
            pno = a >> _PAGE_BITS
            off = a & _PAGE_MASK
            chunk = min(len(data) - pos, _PAGE_SIZE - off)
            pg = self._promote(pno)
            pg[lane, off:off + chunk] = np.frombuffer(
                data[pos:pos + chunk], dtype=_U8)
            pos += chunk

    def write_block_uniform(self, addr: int, data: bytes) -> None:
        pos = 0
        while pos < len(data):
            a = addr + pos
            pno = a >> _PAGE_BITS
            off = a & _PAGE_MASK
            chunk = min(len(data) - pos, _PAGE_SIZE - off)
            pg = self.pages.get(pno)
            if pg is None:
                pg = self.pages[pno] = bytearray(_PAGE_SIZE)
            if isinstance(pg, bytearray):
                pg[off:off + chunk] = data[pos:pos + chunk]
            else:
                pg[:, off:off + chunk] = np.frombuffer(
                    data[pos:pos + chunk], dtype=_U8)[None, :]
            pos += chunk

    def lane_pages(self, lane: int) -> Dict[int, bytearray]:
        """Materialize one lane's scalar page dict (``lane`` is global)."""
        out: Dict[int, bytearray] = {}
        for pno, pg in self.pages.items():
            if isinstance(pg, bytearray):
                out[pno] = bytearray(pg)
            else:
                out[pno] = bytearray(pg[lane].tobytes())
        return out


class _Batch:
    """A set of lanes executing the same instruction stream in lockstep.

    Counters are *hybrid*: a plain int while uniform across lanes (the
    batch never re-converged from divergent histories), an (n,) int64
    array otherwise.  Per-block counts follow the same convention, and
    ``orders`` tracks each lane's first-execution block order (tuples,
    shared structurally between lanes until they diverge).
    """

    __slots__ = ("n", "lane_ids", "midx", "pc", "xregs", "mem", "fflags",
                 "frm", "trap_csrs", "cycles", "instret", "executed",
                 "counts", "orders")

    def __init__(self, n: int, lane_ids: np.ndarray, pc: int,
                 mem: BatchMemory) -> None:
        self.n = n
        self.lane_ids = lane_ids
        self.midx = None  # memory row index; None = all lanes in order
        self.pc = pc
        self.xregs: List[object] = [0] * 32
        self.mem = mem
        self.fflags = 0            # int or (n,) uint8
        self.frm = 0
        self.trap_csrs = {"mstatus": 0, "mtvec": 0, "mscratch": 0,
                          "mepc": 0, "mcause": 0, "mtval": 0}
        self.cycles = 0            # int or (n,) int64
        self.instret = 0
        self.executed = 0
        # counts[start_pc] = [execs, takens], each int or (n,) int64;
        # orders[lane] = tuple of start pcs in first-execution order.
        self.counts: Dict[int, List[object]] = {}
        self.orders: List[tuple] = [()] * n

    def write_x(self, rd: int, value) -> None:
        if rd != 0:
            self.xregs[rd] = value

    def read_x_vec(self, rs: int) -> np.ndarray:
        v = self.xregs[rs]
        if _is_uniform(v):
            return np.full(self.n, v, dtype=_U32)
        return v

    def accrue(self, flags) -> None:
        if _is_uniform(flags):
            if flags:
                if _is_uniform(self.fflags):
                    self.fflags |= flags & 31
                else:
                    self.fflags |= _U8(flags & 31)
        else:
            fl = flags.astype(_U8) & _U8(31)
            if not fl.any():
                return
            if _is_uniform(self.fflags):
                self.fflags = _U8(self.fflags) | fl
            else:
                self.fflags = self.fflags | fl

    def select(self, mask: np.ndarray) -> "_Batch":
        """Partition off the lanes where ``mask`` is True."""
        child = _Batch.__new__(_Batch)
        child.n = int(mask.sum())
        child.lane_ids = self.lane_ids[mask]
        child.pc = self.pc
        child.xregs = [
            _devec(v[mask]) if not _is_uniform(v) else v for v in self.xregs
        ]
        child.mem = self.mem
        child.midx = child.lane_ids
        child.fflags = (self.fflags if _is_uniform(self.fflags)
                        else _devec_u8(self.fflags[mask]))
        child.frm = self.frm
        child.trap_csrs = dict(self.trap_csrs)
        child.cycles = _slice_ctr(self.cycles, mask)
        child.instret = _slice_ctr(self.instret, mask)
        child.executed = _slice_ctr(self.executed, mask)
        child.counts = {
            k: [_slice_ctr(v[0], mask), _slice_ctr(v[1], mask)]
            for k, v in self.counts.items()
        }
        idx = np.nonzero(mask)[0]
        child.orders = [self.orders[l] for l in idx]
        return child


def _devec_u8(v: np.ndarray):
    if v.size and (v == v[0]).all():
        return int(v[0])
    return v


def _slice_ctr(v, mask: np.ndarray):
    """Partition a hybrid (int or per-lane array) counter."""
    return v if type(v) is int else v[mask]


def _ctr_low(v):
    """Low 32 bits of a hybrid counter, as int or uint32 vector."""
    if type(v) is int:
        return v & MASK32
    return _devec((v & np.int64(MASK32)).astype(_U32))


def _ctr_high(v):
    if type(v) is int:
        return (v >> 32) & MASK32
    return _devec((v >> np.int64(32)).astype(_U32))


def _merge_ctr(va, vb, na: int, nb: int):
    if type(va) is int and type(vb) is int and va == vb:
        return va
    av = np.full(na, va, dtype=np.int64) if type(va) is int else va
    bv = np.full(nb, vb, dtype=np.int64) if type(vb) is int else vb
    return np.concatenate([av, bv])


def _merge_reg(va, vb, na: int, nb: int, dtype):
    if type(va) is int and type(vb) is int:
        if va == vb:
            return va
        out = np.empty(na + nb, dtype=dtype)
        out[:na] = va
        out[na:] = vb
        return out
    av = va if type(va) is not int else np.full(na, va, dtype=dtype)
    bv = vb if type(vb) is not int else np.full(nb, vb, dtype=dtype)
    return np.concatenate([av, bv])


def _merge_batches(a: _Batch, b: _Batch) -> _Batch:
    """Re-converge two batches that met at the same PC (same frm and
    trap CSRs; checked by the scheduler)."""
    na, nb = a.n, b.n
    bt = _Batch.__new__(_Batch)
    bt.n = na + nb
    bt.lane_ids = np.concatenate([a.lane_ids, b.lane_ids])
    bt.pc = a.pc
    bt.xregs = [_merge_reg(va, vb, na, nb, _U32)
                for va, vb in zip(a.xregs, b.xregs)]
    bt.mem = a.mem
    bt.midx = bt.lane_ids
    bt.fflags = _merge_reg(a.fflags, b.fflags, na, nb, _U8)
    bt.frm = a.frm
    bt.trap_csrs = dict(a.trap_csrs)
    bt.cycles = _merge_ctr(a.cycles, b.cycles, na, nb)
    bt.instret = _merge_ctr(a.instret, b.instret, na, nb)
    bt.executed = _merge_ctr(a.executed, b.executed, na, nb)
    counts: Dict[int, List[object]] = {}
    for pc, va in a.counts.items():
        vb = b.counts.get(pc, (0, 0))
        counts[pc] = [_merge_ctr(va[0], vb[0], na, nb),
                      _merge_ctr(va[1], vb[1], na, nb)]
    for pc, vb in b.counts.items():
        if pc not in counts:
            counts[pc] = [_merge_ctr(0, vb[0], na, nb),
                          _merge_ctr(0, vb[1], na, nb)]
    bt.counts = counts
    bt.orders = a.orders + b.orders
    return bt


_I32 = np.int32
_I64 = np.int64
_U64 = np.uint64
_RNE = RoundingMode.RNE
_SR = RoundingMode.SR
_SR_FRM = int(RoundingMode.SR)
_SR_KEY_MASK = (1 << 64) - 1

#: True while the engine runs lanes with *divergent* SR keys.  The
#: batched binders compute one result per distinct operand vector, which
#: is only correct under stochastic rounding when every lane draws from
#: the same key; with per-lane keys any SR-rounded op drains the batch
#: into scalar simulators (see ``_drain_all``, which installs each
#: lane's key around its resume).
_SR_NONUNIFORM = False


def _s32(v: np.ndarray) -> np.ndarray:
    if not v.flags.c_contiguous:
        v = np.ascontiguousarray(v)
    return v.view(_I32)


def _signed(value: int) -> int:
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


def _nop_entry(bt) -> None:
    return None


def _drain_entry(bt) -> None:
    raise _Drain()


def _lanewise(n: int, fn):
    bits = np.empty(n, dtype=_U32)
    fl = np.empty(n, dtype=_U8)
    for l in range(n):
        b_, f_ = fn(l)
        bits[l] = b_
        fl[l] = f_
    return bits, fl


# ----------------------------------------------------------------------
# Integer ALU recipes: uniform (python-int) and vector (uint32 array)
# semantics side by side.  The uniform forms mirror the scalar fast
# binders in blocks.py exactly.
# ----------------------------------------------------------------------
_RR_U = {
    "add": lambda a, b: (a + b) & MASK32,
    "sub": lambda a, b: (a - b) & MASK32,
    "sll": lambda a, b: (a << (b & 31)) & MASK32,
    "slt": lambda a, b: 1 if _signed(a) < _signed(b) else 0,
    "sltu": lambda a, b: 1 if a < b else 0,
    "xor": lambda a, b: a ^ b,
    "srl": lambda a, b: a >> (b & 31),
    "sra": lambda a, b: (_signed(a) >> (b & 31)) & MASK32,
    "or": lambda a, b: a | b,
    "and": lambda a, b: a & b,
    "mul": lambda a, b: (a * b) & MASK32,
    "mulh": lambda a, b: ((_signed(a) * _signed(b)) >> 32) & MASK32,
    "mulhsu": lambda a, b: ((_signed(a) * b) >> 32) & MASK32,
    "mulhu": lambda a, b: ((a * b) >> 32) & MASK32,
}

_RR_V = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "sll": lambda a, b: a << (b & _U32(31)),
    "slt": lambda a, b: (_s32(a) < _s32(b)).astype(_U32),
    "sltu": lambda a, b: (a < b).astype(_U32),
    "xor": lambda a, b: a ^ b,
    "srl": lambda a, b: a >> (b & _U32(31)),
    "sra": lambda a, b: (_s32(a) >> (b & _U32(31)).astype(_I32)).view(_U32),
    "or": lambda a, b: a | b,
    "and": lambda a, b: a & b,
    "mul": lambda a, b: a * b,
    "mulh": lambda a, b: (
        ((_s32(a).astype(_I64) * _s32(b).astype(_I64)) >> 32)
        & 0xFFFFFFFF).astype(_U32),
    "mulhsu": lambda a, b: (
        ((_s32(a).astype(_I64) * b.astype(_I64)) >> 32)
        & 0xFFFFFFFF).astype(_U32),
    "mulhu": lambda a, b: (
        (a.astype(_U64) * b.astype(_U64)) >> _U64(32)).astype(_U32),
}

_BR_U = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: _signed(a) < _signed(b),
    "bge": lambda a, b: _signed(a) >= _signed(b),
    "bltu": lambda a, b: a < b,
    "bgeu": lambda a, b: a >= b,
}

_BR_V = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: _s32(a) < _s32(b),
    "bge": lambda a, b: _s32(a) >= _s32(b),
    "bltu": lambda a, b: a < b,
    "bgeu": lambda a, b: a >= b,
}

_LOADS = {"lb": (1, 0x80), "lbu": (1, 0), "lh": (2, 0x8000),
          "lhu": (2, 0), "lw": (4, 0)}
_STORES = {"sb": 1, "sh": 2, "sw": 4}

_SCALAR_FP3 = {"fadd": arith.fadd, "fsub": arith.fsub, "fmul": arith.fmul}
_FMA_NEG = {"fmadd": (False, False), "fmsub": (False, True),
            "fnmsub": (True, False), "fnmadd": (True, True)}
_CMP_OPS = {"feq": ("eq", compare.feq), "flt": ("lt", compare.flt),
            "fle": ("le", compare.fle)}
_VEC3 = {"vfadd": (simd.vfadd, False, False),
         "vfsub": (simd.vfsub, True, False),
         "vfmul": (simd.vfmul, False, True)}

#: Register-pure kinds executed per lane on the scratch machine via the
#: generic handlers.  Correct by construction (same code path as the
#: reference interpreter); these are rare in the paper's kernels.
_SCRATCH_KINDS = frozenset({
    "div", "divu", "rem", "remu",
    "fdiv", "fsqrt", "fmin", "fmax", "fsgnj", "fsgnjn", "fsgnjx",
    "fclass", "fmv_f_x", "fmv_x_f",
    "fcvt_f_w", "fcvt_f_wu", "fcvt_w_f", "fcvt_wu_f",
    "vfdiv", "vfmin", "vfmax", "vfsgnj", "vfsgnjn", "vfsgnjx", "vfsqrt",
    "vfcvt_f_x", "vfcvt_x_f", "vfcvt_f2f", "vfcpka", "vfcpkb",
    "vfdotpmx", "vfeq", "vflt", "vfle",
})

#: Scratch kinds whose handlers perform an FP rounding step (and so
#: read the ambient stochastic-rounding key when ``frm`` selects SR).
_ROUNDING_SCRATCH = frozenset({
    "fdiv", "fsqrt", "fcvt_f_w", "fcvt_f_wu", "fcvt_w_f", "fcvt_wu_f",
    "vfdiv", "vfsqrt", "vfcvt_f_x", "vfcvt_x_f", "vfcvt_f2f",
    "vfcpka", "vfcpkb", "vfdotpmx",
})


def _rm_resolver(i):
    """Per-execution rounding-mode getter, or None on a reserved static
    encoding (which the scalar engine resolves as an exec-time trap)."""
    usable, rm = _resolve_static_rm(i)
    if not usable:
        return None
    if rm is not None:
        if rm is _SR:
            def static_sr(bt, rm=rm):
                if _SR_NONUNIFORM:
                    raise _Drain()  # per-lane keys: scalar core rounds
                return rm
            return static_sr
        return lambda bt, rm=rm: rm

    def dynamic(bt):
        mode = _RM_BY_VALUE.get(bt.frm)
        if mode is None:
            raise _Drain()  # reserved frm: scalar core raises ValueError
        if mode is _SR and _SR_NONUNIFORM:
            raise _Drain()  # per-lane keys: scalar core rounds
        return mode
    return dynamic


class _LockBlock:
    __slots__ = ("sblock", "entries", "term_fn")

    def __init__(self, sblock, entries, term_fn):
        self.sblock = sblock
        self.entries = entries
        self.term_fn = term_fn


_UNBUILDABLE = object()


class LockstepEngine:
    """Batched dispatcher over one template :class:`Simulator`."""

    def __init__(self, template: Simulator):
        m = template.machine
        if not m.merged_regfile or m.flen != 32:
            raise SimulationError(
                "lockstep requires the merged register file at FLEN=32")
        self.tpl = template
        self._tpl_engine = template._engine()
        self._scratch = Machine(Memory(), merged_regfile=True, flen=m.flen)
        self._blocks: Dict[int, object] = {}
        self._budget = 0
        self._sr_keys: List[int] = []

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def run(self, lanes, entry=0, max_instructions: int = 50_000_000,
            frm: int = 0):
        """Run every lane to completion; returns per-lane RunResults.

        ``lanes`` is a sequence of :class:`Lane` staging records.  The
        result list is ordered like ``lanes`` and each element is
        bit-identical to a dedicated :meth:`Simulator.run` of that
        point.  ``frm`` seeds every lane's dynamic rounding mode (the
        value a harness would ``csrw frm`` before calling the kernel);
        per-lane ``Lane.sr_key`` values seed stochastic rounding --
        uniform keys run fully batched, divergent keys drain SR-rounded
        work to scalar simulators.
        """
        tpl = self.tpl
        n = len(lanes)
        self._budget = max_instructions
        self._tpl_engine._check_timing_epoch()
        entry_pc = tpl.address_of(entry)

        keys = [getattr(lane, "sr_key", 0) & _SR_KEY_MASK
                for lane in lanes]
        self._sr_keys = keys

        bt = _Batch(n, np.arange(n), entry_pc,
                    BatchMemory(n, tpl.machine.memory._pages))
        bt.frm = frm & 0b111
        bt.xregs[1] = HALT_ADDRESS
        bt.xregs[2] = STACK_TOP
        regs = set()
        for lane in lanes:
            regs.update(lane.args)
        for r in sorted(regs):
            if r == 0:
                continue
            vals = [(lane.args[r] & MASK32) if r in lane.args
                    else bt.xregs[r] for lane in lanes]
            first = vals[0]
            if all(v == first for v in vals):
                bt.xregs[r] = first
            else:
                bt.xregs[r] = np.array(vals, dtype=_U32)
        first_stores = lanes[0].stores
        if all(lane.stores == first_stores for lane in lanes):
            for addr, data in first_stores:
                bt.mem.write_block_uniform(addr, bytes(data))
        else:
            for idx, lane in enumerate(lanes):
                for addr, data in lane.stores:
                    bt.mem.write_lane(idx, addr, bytes(data))

        out: List[Optional[RunResult]] = [None] * n
        heap = self._heap = []
        self._seq = 0
        self._push(bt)
        global _SR_NONUNIFORM
        prev_flag = _SR_NONUNIFORM
        prev_key = set_sr_key(keys[0] if keys else 0)
        _SR_NONUNIFORM = len(set(keys)) > 1
        try:
            with fpbatch.quiet_errors():
                while heap:
                    cur = heapq.heappop(heap)[2]
                    # Re-convergence: merge every compatible batch
                    # waiting at the same PC before running.
                    while heap and heap[0][0] == cur.pc:
                        peer = heap[0][2]
                        if (peer.frm != cur.frm
                                or peer.trap_csrs != cur.trap_csrs):
                            break
                        heapq.heappop(heap)
                        cur = _merge_batches(cur, peer)
                    # With other batches pending, step one block at a
                    # time so diverged batches can catch up and
                    # re-merge; otherwise run the tight loop.
                    self._run_batch(cur, out, single=bool(heap))
        finally:
            _SR_NONUNIFORM = prev_flag
            set_sr_key(prev_key)
        return out

    def _push(self, bt: _Batch) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (bt.pc, self._seq, bt))

    # ------------------------------------------------------------------
    # Batch dispatch loop (mirrors BlockEngine.run)
    # ------------------------------------------------------------------
    def _run_batch(self, bt: _Batch, out, single: bool = False) -> None:
        budget = self._budget
        while bt.pc != _SENTINEL:
            pc = bt.pc
            executed = bt.executed
            if type(executed) is not int:
                executed = int(executed.max())
            if executed >= budget:
                self._drain_all(bt, out)  # resume reports budget_exceeded
                return
            lb = self._get_block(pc)
            if lb is None:
                self._drain_all(bt, out)  # reference loop resolves it
                return
            sb = lb.sblock
            if executed + sb.total_len > budget:
                self._drain_all(bt, out)  # watchdog edge: step scalar
                return
            rec = bt.counts.get(pc)
            if rec is None:
                rec = bt.counts[pc] = [0, 0]
                orders = bt.orders
                for l in range(bt.n):
                    orders[l] = orders[l] + (pc,)
            elif type(rec[0]) is not int and not rec[0].all():
                # Re-converged lanes may see this block for the first
                # time: their Counter insertion order starts here.
                orders = bt.orders
                for l in np.nonzero(rec[0] == 0)[0]:
                    orders[l] = orders[l] + (pc,)

            entries = lb.entries
            drained = False
            for idx in range(len(entries)):
                try:
                    entries[idx](bt)
                except _Drain:
                    bt.pc = sb.entries[idx][2]
                    self._drain_all(bt, out, idx, sb)
                    drained = True
                    break
            if drained:
                return

            n = sb.n_entries
            bt.instret += n
            bt.cycles += sb.static_cycles
            bt.executed += n
            if lb.term_fn is None:
                bt.pc = sb.end
                rec[0] += 1
            else:
                term = sb.term
                try:
                    res = lb.term_fn(bt)
                except _Drain:
                    bt.instret -= n
                    bt.cycles -= sb.static_cycles
                    bt.executed -= n
                    bt.pc = term[2]
                    self._drain_all(bt, out, n, sb)
                    return

                cost_nt, cost_tk = term[4], term[5]
                if isinstance(res, _SplitMask):
                    rec[0] += 1
                    bt.instret += 1
                    bt.executed += 1
                    taken = bt.select(res.mask)
                    taken.cycles += cost_tk
                    taken.counts[pc][1] += 1
                    taken.pc = res.target
                    fall = bt.select(~res.mask)
                    fall.cycles += cost_nt
                    fall.pc = term[3]
                    self._push(taken)
                    self._push(fall)
                    return
                if res is not None:
                    bt.cycles += cost_tk
                    rec[1] += 1
                    bt.pc = res
                else:
                    bt.cycles += cost_nt
                    bt.pc = term[3]
                bt.instret += 1
                rec[0] += 1
                bt.executed += 1

            if single and bt.pc != _SENTINEL:
                self._push(bt)  # let lagging batches catch up and merge
                return

        self._drain_all(bt, out)  # halt: resume returns immediately

    # ------------------------------------------------------------------
    # Block binding
    # ------------------------------------------------------------------
    def _get_block(self, pc: int) -> Optional[_LockBlock]:
        lb = self._blocks.get(pc)
        if lb is None:
            sb = self._tpl_engine._build(pc)
            if sb is None:
                lb = _UNBUILDABLE
            else:
                entries = [self._bind_entry(instr, epc)
                           for (_fn, instr, epc) in sb.entries]
                term_fn = (self._bind_term(sb.term)
                           if sb.term is not None else None)
                lb = _LockBlock(sb, entries, term_fn)
            self._blocks[pc] = lb
        return None if lb is _UNBUILDABLE else lb

    # ------------------------------------------------------------------
    # Entry binders
    # ------------------------------------------------------------------
    def _bind_entry(self, i, epc: int):
        kind = i.kind
        if kind in _RR_U:
            return _bind_int_rr(i, _RR_U[kind], _RR_V[kind])
        if kind == "addi":
            imm = i.imm
            return _bind_int_imm(
                i, lambda a, imm=imm: (a + imm) & MASK32,
                lambda a, c=_U32(imm & MASK32): a + c)
        if kind in ("andi", "ori", "xori"):
            imm = i.imm & MASK32
            op = {"andi": lambda a, b: a & b, "ori": lambda a, b: a | b,
                  "xori": lambda a, b: a ^ b}[kind]
            return _bind_int_imm(
                i, lambda a, imm=imm, op=op: op(a, imm),
                lambda a, c=_U32(imm), op=op: op(a, c))
        if kind == "slti":
            imm = i.imm
            return _bind_int_imm(
                i, lambda a, imm=imm: 1 if _signed(a) < imm else 0,
                lambda a, c=_I32(imm): (_s32(a) < c).astype(_U32))
        if kind == "sltiu":
            imm = i.imm & MASK32
            return _bind_int_imm(
                i, lambda a, imm=imm: 1 if a < imm else 0,
                lambda a, c=_U32(imm): (a < c).astype(_U32))
        if kind == "slli":
            sh = i.imm & 31
            return _bind_int_imm(
                i, lambda a, sh=sh: (a << sh) & MASK32,
                lambda a, c=_U32(sh): a << c)
        if kind == "srli":
            sh = i.imm & 31
            return _bind_int_imm(
                i, lambda a, sh=sh: a >> sh,
                lambda a, c=_U32(sh): a >> c)
        if kind == "srai":
            sh = i.imm & 31
            return _bind_int_imm(
                i, lambda a, sh=sh: (_signed(a) >> sh) & MASK32,
                lambda a, c=_I32(sh): (_s32(a) >> c).view(_U32))
        if kind == "lui":
            return _bind_const(i.rd, (i.imm << 12) & MASK32)
        if kind == "auipc":
            return _bind_const(i.rd, (epc + (i.imm << 12)) & MASK32)
        if kind in _LOADS:
            size, sign_bits = _LOADS[kind]
            return _bind_load(i, size, sign_bits)
        if kind in _STORES:
            size = _STORES[kind]
            return _bind_store(i, size, (1 << (8 * size)) - 1)
        if kind == "flw":
            size = _WIDTH_BYTES(i.spec.fp_fmt)
            return _bind_load(i, size, 0)
        if kind == "fsw":
            size = _WIDTH_BYTES(i.spec.fp_fmt)
            return _bind_store(i, size, (1 << (8 * size)) - 1)
        if kind == "fence":
            return _nop_entry
        if kind in _SCALAR_FP3:
            return self._bind_fadd_like(i, kind)
        if kind in _FMA_NEG:
            return self._bind_fma_like(i, kind)
        if kind == "fmulex":
            return self._bind_fmulex(i)
        if kind == "fmacex":
            return self._bind_fmacex(i)
        if kind in _CMP_OPS:
            return self._bind_fcmp(i, kind)
        if kind == "fcvt_f2f":
            return self._bind_fcvt(i)
        if kind in _VEC3:
            return self._bind_vec_arith(i, kind)
        if kind == "vfmac":
            return self._bind_vfmac(i)
        if kind == "vfdotpex":
            return self._bind_vfdotpex(i)
        if kind in _SCRATCH_KINDS:
            return self._bind_scratch(i)
        return _drain_entry  # ecall/ebreak/unknown: scalar core decides

    # -- scratch fallback ----------------------------------------------

    def _bind_scratch(self, i):
        fn = _HANDLERS[i.kind]
        rd = i.rd
        rs3 = getattr(i, "rs3", None)
        srcs = tuple({r for r in (i.rs1, i.rs2, rs3, rd)
                      if isinstance(r, int) and r})
        scratch = self._scratch
        # Rounding scratch ops consult the ambient SR key through the
        # generic handlers; with divergent per-lane keys they must drain.
        spec = i.spec
        rounds = i.kind in _ROUNDING_SCRATCH
        static_sr = (rounds and spec.rm_fixed is None and not spec.vec
                     and i.rm == _SR_FRM)

        def run(bt, fn=fn, i=i, rd=rd, srcs=srcs, m=scratch):
            if rounds and _SR_NONUNIFORM and (
                    static_sr or bt.frm == _SR_FRM):
                raise _Drain()
            vals = [bt.xregs[r] for r in srcs]
            csr = m.csr
            if all(type(v) is int for v in vals):
                x = m.xregs
                for r, v in zip(srcs, vals):
                    x[r] = v
                csr.frm = bt.frm
                csr.fflags = 0
                try:
                    fn(m, i)
                except GUEST_FAULTS:
                    raise _Drain()
                bt.accrue(csr.fflags)
                if rd:
                    bt.xregs[rd] = x[rd]
                return
            outs = np.empty(bt.n, dtype=_U32)
            fl = np.empty(bt.n, dtype=_U8)
            x = m.xregs
            for l in range(bt.n):
                for r, v in zip(srcs, vals):
                    x[r] = v if type(v) is int else int(v[l])
                csr.frm = bt.frm
                csr.fflags = 0
                try:
                    fn(m, i)
                except GUEST_FAULTS:
                    raise _Drain()
                outs[l] = x[rd] if rd else 0
                fl[l] = csr.fflags
            bt.accrue(fl)
            if rd:
                bt.xregs[rd] = _devec(outs)
        return run

    # -- scalar FP, vectorized over the batch ---------------------------

    def _bind_fadd_like(self, i, kind):
        fmt = registry.by_suffix(i.spec.fp_fmt)
        getrm = _rm_resolver(i)
        if getrm is None:
            return _drain_entry
        mask = fmt.bits_mask if fmt.width < 32 else MASK32
        umask = _U32(mask)
        vec_ok = fpbatch.batchable(fmt)
        sop = _SCALAR_FP3[kind]
        sub = kind == "fsub"
        ismul = kind == "fmul"
        rd, rs1, rs2 = i.rd, i.rs1, i.rs2

        def run(bt):
            rm = getrm(bt)
            a = bt.xregs[rs1]
            b = bt.xregs[rs2]
            if type(a) is int and type(b) is int:
                bits, fl = sop(fmt, a & mask, b & mask, rm)
                bt.accrue(fl)
                if rd:
                    bt.xregs[rd] = bits & mask
                return
            av = bt.read_x_vec(rs1) & umask
            bv = bt.read_x_vec(rs2) & umask
            if vec_ok and rm is _RNE:
                if ismul:
                    bits, fl, fb = fpbatch.mul(fmt, av, bv)
                else:
                    bits, fl, fb = fpbatch.add(fmt, av, bv, sub=sub)
                if fb.any():
                    for l in np.nonzero(fb)[0]:
                        b_, f_ = sop(fmt, int(av[l]), int(bv[l]), rm)
                        bits[l] = b_ & mask
                        fl[l] = f_
            else:
                bits, fl = _lanewise(bt.n, lambda l: sop(
                    fmt, int(av[l]), int(bv[l]), rm))
                bits &= umask
            bt.accrue(fl)
            if rd:
                bt.xregs[rd] = bits
        return run

    def _bind_fma_like(self, i, kind):
        fmt = registry.by_suffix(i.spec.fp_fmt)
        getrm = _rm_resolver(i)
        if getrm is None:
            return _drain_entry
        mask = fmt.bits_mask if fmt.width < 32 else MASK32
        umask = _U32(mask)
        vec_ok = fpbatch.batchable(fmt)
        np_, na = _FMA_NEG[kind]
        rd, rs1, rs2, rs3 = i.rd, i.rs1, i.rs2, i.rs3

        def run(bt):
            rm = getrm(bt)
            a, b, c = bt.xregs[rs1], bt.xregs[rs2], bt.xregs[rs3]
            if type(a) is int and type(b) is int and type(c) is int:
                bits, fl = arith.ffma(fmt, a & mask, b & mask, c & mask, rm,
                                      negate_product=np_, negate_addend=na)
                bt.accrue(fl)
                if rd:
                    bt.xregs[rd] = bits & mask
                return
            av = bt.read_x_vec(rs1) & umask
            bv = bt.read_x_vec(rs2) & umask
            cv = bt.read_x_vec(rs3) & umask
            if vec_ok and rm is _RNE:
                bits, fl, fb = fpbatch.fma(fmt, av, bv, cv,
                                           negate_product=np_,
                                           negate_addend=na)
                if fb.any():
                    for l in np.nonzero(fb)[0]:
                        b_, f_ = arith.ffma(
                            fmt, int(av[l]), int(bv[l]), int(cv[l]), rm,
                            negate_product=np_, negate_addend=na)
                        bits[l] = b_ & mask
                        fl[l] = f_
            else:
                bits, fl = _lanewise(bt.n, lambda l: arith.ffma(
                    fmt, int(av[l]), int(bv[l]), int(cv[l]), rm,
                    negate_product=np_, negate_addend=na))
                bits &= umask
            bt.accrue(fl)
            if rd:
                bt.xregs[rd] = bits
        return run

    def _bind_fmulex(self, i):
        src = registry.by_suffix(i.spec.src_fmt)
        dst = FORMATS_BY_SUFFIX["s"]
        getrm = _rm_resolver(i)
        if getrm is None:
            return _drain_entry
        smask = src.bits_mask if src.width < 32 else MASK32
        usmask = _U32(smask)
        vec_ok = fpbatch.batchable(src)
        rd, rs1, rs2 = i.rd, i.rs1, i.rs2

        def run(bt):
            rm = getrm(bt)
            a, b = bt.xregs[rs1], bt.xregs[rs2]
            if type(a) is int and type(b) is int:
                bits, fl = arith.fmul_widen(src, dst, a & smask, b & smask,
                                            rm)
                bt.accrue(fl)
                if rd:
                    bt.xregs[rd] = bits & MASK32
                return
            av = bt.read_x_vec(rs1) & usmask
            bv = bt.read_x_vec(rs2) & usmask
            if vec_ok and rm is _RNE:
                bits, fl, fb = fpbatch.mul(dst, av, bv, src=src)
                if fb.any():
                    for l in np.nonzero(fb)[0]:
                        b_, f_ = arith.fmul_widen(src, dst, int(av[l]),
                                                  int(bv[l]), rm)
                        bits[l] = b_ & MASK32
                        fl[l] = f_
            else:
                bits, fl = _lanewise(bt.n, lambda l: arith.fmul_widen(
                    src, dst, int(av[l]), int(bv[l]), rm))
            bt.accrue(fl)
            if rd:
                bt.xregs[rd] = bits
        return run

    def _bind_fmacex(self, i):
        src = registry.by_suffix(i.spec.src_fmt)
        dst = FORMATS_BY_SUFFIX["s"]
        getrm = _rm_resolver(i)
        if getrm is None:
            return _drain_entry
        smask = src.bits_mask if src.width < 32 else MASK32
        usmask = _U32(smask)
        vec_ok = fpbatch.batchable(src)
        rd, rs1, rs2 = i.rd, i.rs1, i.rs2

        def run(bt):
            rm = getrm(bt)
            a, b = bt.xregs[rs1], bt.xregs[rs2]
            acc = bt.xregs[rd]
            if type(a) is int and type(b) is int and type(acc) is int:
                bits, fl = arith.fma_mixed(src, dst, a & smask, b & smask,
                                           acc & MASK32, rm)
                bt.accrue(fl)
                if rd:
                    bt.xregs[rd] = bits & MASK32
                return
            av = bt.read_x_vec(rs1) & usmask
            bv = bt.read_x_vec(rs2) & usmask
            cv = bt.read_x_vec(rd)
            if vec_ok and rm is _RNE:
                bits, fl, fb = fpbatch.fma(dst, av, bv, cv, src=src)
                if fb.any():
                    for l in np.nonzero(fb)[0]:
                        b_, f_ = arith.fma_mixed(src, dst, int(av[l]),
                                                 int(bv[l]), int(cv[l]), rm)
                        bits[l] = b_ & MASK32
                        fl[l] = f_
            else:
                bits, fl = _lanewise(bt.n, lambda l: arith.fma_mixed(
                    src, dst, int(av[l]), int(bv[l]), int(cv[l]), rm))
            bt.accrue(fl)
            if rd:
                bt.xregs[rd] = bits
        return run

    def _bind_fcmp(self, i, kind):
        fmt = registry.by_suffix(i.spec.fp_fmt)
        mask = fmt.bits_mask if fmt.width < 32 else MASK32
        umask = _U32(mask)
        vec_ok = fpbatch.batchable(fmt)
        opname, sop = _CMP_OPS[kind]
        rd, rs1, rs2 = i.rd, i.rs1, i.rs2

        def run(bt):
            a, b = bt.xregs[rs1], bt.xregs[rs2]
            if type(a) is int and type(b) is int:
                res, fl = sop(fmt, a & mask, b & mask)
                bt.accrue(fl)
                if rd:
                    bt.xregs[rd] = res & MASK32
                return
            av = bt.read_x_vec(rs1) & umask
            bv = bt.read_x_vec(rs2) & umask
            if vec_ok:
                res, fl = fpbatch.cmp(fmt, opname, av, bv)
            else:
                res, fl = _lanewise(bt.n, lambda l: sop(
                    fmt, int(av[l]), int(bv[l])))
            bt.accrue(fl)
            if rd:
                bt.xregs[rd] = res
        return run

    def _bind_fcvt(self, i):
        src = registry.by_suffix(i.spec.src_fmt)
        dst = registry.by_suffix(i.spec.fp_fmt)
        getrm = _rm_resolver(i)
        if getrm is None:
            return _drain_entry
        smask = src.bits_mask if src.width < 32 else MASK32
        dmask = dst.bits_mask if dst.width < 32 else MASK32
        usmask = _U32(smask)
        vec_ok = fpbatch.batchable(src) and fpbatch.batchable(dst)
        rd, rs1 = i.rd, i.rs1

        def run(bt):
            rm = getrm(bt)
            a = bt.xregs[rs1]
            if type(a) is int:
                bits, fl = _fcvt_scalar(src, dst, a & smask, rm)
                bt.accrue(fl)
                if rd:
                    bt.xregs[rd] = bits & dmask
                return
            av = bt.read_x_vec(rs1) & usmask
            if vec_ok and rm is _RNE:
                bits, fl, fb = fpbatch.cvt(src, dst, av)
                if fb.any():
                    for l in np.nonzero(fb)[0]:
                        b_, f_ = _fcvt_scalar(src, dst, int(av[l]), rm)
                        bits[l] = b_ & dmask
                        fl[l] = f_
            else:
                bits, fl = _lanewise(bt.n, lambda l: _fcvt_scalar(
                    src, dst, int(av[l]), rm))
                bits &= _U32(dmask)
            bt.accrue(fl)
            if rd:
                bt.xregs[rd] = bits
        return run

    # -- packed-SIMD, vectorized over the batch --------------------------

    def _bind_vec_arith(self, i, kind):
        fmt = registry.by_suffix(i.spec.fp_fmt)
        if fmt.width >= 32:
            return self._bind_scratch(i)
        getrm = _rm_resolver(i)
        if getrm is None:
            return _drain_entry
        w = fmt.width
        nl = 32 // w
        fmt_mask = fmt.bits_mask
        umask = _U32(fmt_mask)
        repl = bool(i.spec.repl)
        repl_factor = (sum(1 << (k * w) for k in range(nl)) if repl else None)
        vec_ok = fpbatch.batchable(fmt)
        sop, sub, ismul = _VEC3[kind]
        rd, rs1, rs2 = i.rd, i.rs1, i.rs2

        def run(bt):
            rm = getrm(bt)
            a, b = bt.xregs[rs1], bt.xregs[rs2]
            if type(a) is int and type(b) is int:
                beff = (b & fmt_mask) * repl_factor if repl else b
                bits, fl = sop(fmt, 32, a, beff, rm)
                bt.accrue(fl)
                if rd:
                    bt.xregs[rd] = bits & MASK32
                return
            av = bt.read_x_vec(rs1)
            bv = bt.read_x_vec(rs2)
            if vec_ok and rm is _RNE:
                out = np.zeros(bt.n, dtype=_U32)
                flt = np.zeros(bt.n, dtype=_U8)
                fb_any = np.zeros(bt.n, dtype=bool)
                for k in range(nl):
                    ak = (av >> _U32(k * w)) & umask
                    bk = (bv & umask) if repl else ((bv >> _U32(k * w))
                                                   & umask)
                    if ismul:
                        bits_k, fl_k, fb_k = fpbatch.mul(fmt, ak, bk)
                    else:
                        bits_k, fl_k, fb_k = fpbatch.add(fmt, ak, bk,
                                                         sub=sub)
                    out |= bits_k << _U32(k * w)
                    flt |= fl_k
                    fb_any |= fb_k
                if fb_any.any():
                    for l in np.nonzero(fb_any)[0]:
                        bfull = int(bv[l])
                        beff = ((bfull & fmt_mask) * repl_factor
                                if repl else bfull)
                        b_, f_ = sop(fmt, 32, int(av[l]), beff, rm)
                        out[l] = b_ & MASK32
                        flt[l] = f_
            else:
                def one(l):
                    bfull = int(bv[l])
                    beff = ((bfull & fmt_mask) * repl_factor
                            if repl else bfull)
                    return sop(fmt, 32, int(av[l]), beff, rm)
                out, flt = _lanewise(bt.n, one)
            bt.accrue(flt)
            if rd:
                bt.xregs[rd] = out
        return run

    def _bind_vfmac(self, i):
        fmt = registry.by_suffix(i.spec.fp_fmt)
        if fmt.width >= 32:
            return self._bind_scratch(i)
        getrm = _rm_resolver(i)
        if getrm is None:
            return _drain_entry
        w = fmt.width
        nl = 32 // w
        fmt_mask = fmt.bits_mask
        umask = _U32(fmt_mask)
        repl = bool(i.spec.repl)
        repl_factor = (sum(1 << (k * w) for k in range(nl)) if repl else None)
        vec_ok = fpbatch.batchable(fmt)
        rd, rs1, rs2 = i.rd, i.rs1, i.rs2

        def run(bt):
            rm = getrm(bt)
            a, b = bt.xregs[rs1], bt.xregs[rs2]
            acc = bt.xregs[rd]
            if type(a) is int and type(b) is int and type(acc) is int:
                beff = (b & fmt_mask) * repl_factor if repl else b
                bits, fl = simd.vfmac(fmt, 32, acc, a, beff, rm)
                bt.accrue(fl)
                if rd:
                    bt.xregs[rd] = bits & MASK32
                return
            av = bt.read_x_vec(rs1)
            bv = bt.read_x_vec(rs2)
            cv = bt.read_x_vec(rd)
            if vec_ok and rm is _RNE:
                out = np.zeros(bt.n, dtype=_U32)
                flt = np.zeros(bt.n, dtype=_U8)
                fb_any = np.zeros(bt.n, dtype=bool)
                for k in range(nl):
                    ak = (av >> _U32(k * w)) & umask
                    bk = (bv & umask) if repl else ((bv >> _U32(k * w))
                                                   & umask)
                    ck = (cv >> _U32(k * w)) & umask
                    bits_k, fl_k, fb_k = fpbatch.fma(fmt, ak, bk, ck)
                    out |= bits_k << _U32(k * w)
                    flt |= fl_k
                    fb_any |= fb_k
                if fb_any.any():
                    for l in np.nonzero(fb_any)[0]:
                        bfull = int(bv[l])
                        beff = ((bfull & fmt_mask) * repl_factor
                                if repl else bfull)
                        b_, f_ = simd.vfmac(fmt, 32, int(cv[l]),
                                            int(av[l]), beff, rm)
                        out[l] = b_ & MASK32
                        flt[l] = f_
            else:
                def one(l):
                    bfull = int(bv[l])
                    beff = ((bfull & fmt_mask) * repl_factor
                            if repl else bfull)
                    return simd.vfmac(fmt, 32, int(cv[l]), int(av[l]),
                                      beff, rm)
                out, flt = _lanewise(bt.n, one)
            bt.accrue(flt)
            if rd:
                bt.xregs[rd] = out
        return run

    def _bind_vfdotpex(self, i):
        src = registry.by_suffix(i.spec.src_fmt)
        dst = FORMATS_BY_SUFFIX["s"]
        if src.width >= 32:
            return self._bind_scratch(i)
        getrm = _rm_resolver(i)
        if getrm is None:
            return _drain_entry
        w = src.width
        nl = 32 // w
        fmt_mask = src.bits_mask
        umask = _U32(fmt_mask)
        repl = bool(i.spec.repl)
        repl_factor = (sum(1 << (k * w) for k in range(nl)) if repl else None)
        vec_ok = fpbatch.batchable(src)
        rd, rs1, rs2 = i.rd, i.rs1, i.rs2

        def run(bt):
            rm = getrm(bt)
            a, b = bt.xregs[rs1], bt.xregs[rs2]
            acc = bt.xregs[rd]
            if type(a) is int and type(b) is int and type(acc) is int:
                beff = (b & fmt_mask) * repl_factor if repl else b
                bits, fl = simd.vfdotpex(src, dst, 32, acc & MASK32, a,
                                         beff, rm)
                bt.accrue(fl)
                if rd:
                    bt.xregs[rd] = bits & MASK32
                return
            av = bt.read_x_vec(rs1)
            bv = bt.read_x_vec(rs2)
            cv = bt.read_x_vec(rd)
            if vec_ok and rm is _RNE:
                a_lanes = [(av >> _U32(k * w)) & umask for k in range(nl)]
                if repl:
                    b_lanes = [bv & umask for _ in range(nl)]
                else:
                    b_lanes = [(bv >> _U32(k * w)) & umask
                               for k in range(nl)]
                bits, fl, fb = fpbatch.dotp(src, dst, cv, a_lanes, b_lanes)
                if fb.any():
                    for l in np.nonzero(fb)[0]:
                        bfull = int(bv[l])
                        beff = ((bfull & fmt_mask) * repl_factor
                                if repl else bfull)
                        b_, f_ = simd.vfdotpex(src, dst, 32, int(cv[l]),
                                               int(av[l]), beff, rm)
                        bits[l] = b_ & MASK32
                        fl[l] = f_
            else:
                def one(l):
                    bfull = int(bv[l])
                    beff = ((bfull & fmt_mask) * repl_factor
                            if repl else bfull)
                    return simd.vfdotpex(src, dst, 32, int(cv[l]),
                                         int(av[l]), beff, rm)
                bits, fl = _lanewise(bt.n, one)
            bt.accrue(fl)
            if rd:
                bt.xregs[rd] = bits
        return run

    # ------------------------------------------------------------------
    # Terminators
    # ------------------------------------------------------------------
    def _bind_term(self, term):
        i, tpc, fallthrough = term[1], term[2], term[3]
        kind = i.kind
        if kind in _BR_U:
            uf, vf = _BR_U[kind], _BR_V[kind]
            rs1, rs2 = i.rs1, i.rs2
            target = (tpc + i.imm) & MASK32

            def run(bt, uf=uf, vf=vf, rs1=rs1, rs2=rs2, target=target):
                a, b = bt.xregs[rs1], bt.xregs[rs2]
                if type(a) is int and type(b) is int:
                    return target if uf(a, b) else None
                mask = vf(bt.read_x_vec(rs1), bt.read_x_vec(rs2))
                if mask.all():
                    return target
                if not mask.any():
                    return None
                return _SplitMask(mask, target)
            return run
        if kind == "jal":
            rd = i.rd
            target = (tpc + i.imm) & MASK32
            link = fallthrough

            def run(bt, rd=rd, target=target, link=link):
                if rd:
                    bt.xregs[rd] = link
                return target
            return run
        if kind == "jalr":
            rd, rs1, imm = i.rd, i.rs1, i.imm
            link = fallthrough

            def run(bt, rd=rd, rs1=rs1, imm=imm, link=link):
                base = bt.xregs[rs1]
                if type(base) is not int:
                    base = _devec(base)
                    if type(base) is not int:
                        raise _Drain()  # indirect-jump divergence
                target = (base + imm) & ~1 & MASK32
                if rd:
                    bt.xregs[rd] = link
                return target
            return run
        if kind in _CSR_TERM_KINDS:
            return self._bind_csr_term(i)
        return _drain_entry  # ecall/ebreak/other cf: scalar core decides

    def _bind_csr_term(self, i):
        num, kind, rd, rs1 = i.imm, i.kind, i.rd, i.rs1

        def run(bt):
            old = self._csr_read(bt, num)
            if kind == "csrrw":
                self._csr_write(bt, num, bt.xregs[rs1] if rs1 else 0)
            elif kind == "csrrs":
                if rs1:
                    self._csr_write(bt, num, _bits_or(old, bt.xregs[rs1]))
            elif kind == "csrrc":
                if rs1:
                    self._csr_write(bt, num,
                                    _bits_andnot(old, bt.xregs[rs1]))
            elif kind == "csrrwi":
                self._csr_write(bt, num, rs1)
            elif kind == "csrrsi":
                if rs1:
                    self._csr_write(bt, num, _bits_or(old, rs1))
            else:  # csrrci
                if rs1:
                    self._csr_write(bt, num, _bits_andnot(old, rs1))
            if rd:
                bt.xregs[rd] = old
            return None
        return run

    def _csr_read(self, bt, num: int):
        if num == CSR_FFLAGS:
            f = bt.fflags
            return f if type(f) is int else f.astype(_U32)
        if num == CSR_FRM:
            return bt.frm
        if num == CSR_FCSR:
            f = bt.fflags
            if type(f) is int:
                return (bt.frm << 5) | f
            return _U32(bt.frm << 5) | f.astype(_U32)
        if num == CSR_CYCLE:
            return _ctr_low(bt.cycles)
        if num == CSR_CYCLEH:
            return _ctr_high(bt.cycles)
        if num == CSR_INSTRET:
            return _ctr_low(bt.instret)
        if num == CSR_INSTRETH:
            return _ctr_high(bt.instret)
        if num == CSR_MHARTID:
            return 0
        name = CsrFile._TRAP_RW.get(num)
        if name is not None:
            return bt.trap_csrs[name]
        raise _Drain()  # unimplemented CSR: IllegalCsr on the scalar path

    def _csr_write(self, bt, num: int, value) -> None:
        if num == CSR_FFLAGS:
            if type(value) is int:
                bt.fflags = value & 31
            else:
                bt.fflags = _devec_u8((value & _U32(31)).astype(_U8))
        elif num == CSR_FRM:
            value = _devec(value)
            if type(value) is not int:
                raise _Drain()  # divergent frm: lanes must run scalar
            bt.frm = value & 0b111
        elif num == CSR_FCSR:
            if type(value) is int:
                bt.fflags = value & 31
                bt.frm = (value >> 5) & 0b111
            else:
                frm_v = _devec((value >> _U32(5)) & _U32(7))
                if type(frm_v) is not int:
                    raise _Drain()
                bt.frm = frm_v
                bt.fflags = _devec_u8((value & _U32(31)).astype(_U8))
        else:
            name = CsrFile._TRAP_RW.get(num)
            if name is None:
                raise _Drain()  # read-only or unknown CSR: traps scalar
            value = _devec(value)
            if type(value) is not int:
                raise _Drain()
            bt.trap_csrs[name] = value & MASK32

    # ------------------------------------------------------------------
    # Draining: hand lanes to per-point scalar simulators
    # ------------------------------------------------------------------
    def _lane_proto(self, bt: _Batch, ln: int) -> Trace:
        """One lane's trace: counters flushed in that lane's
        first-execution order, exactly like :meth:`BlockEngine._flush`."""
        t = Trace()
        t.instret = (bt.instret if type(bt.instret) is int
                     else int(bt.instret[ln]))
        t.cycles = (bt.cycles if type(bt.cycles) is int
                    else int(bt.cycles[ln]))
        bm, bc, pcs = t.by_mnemonic, t.by_category, t.pc_counts
        counts = bt.counts
        for start in bt.orders[ln]:
            rec = counts[start]
            execs = rec[0] if type(rec[0]) is int else int(rec[0][ln])
            if not execs:
                continue
            takens = rec[1] if type(rec[1]) is int else int(rec[1][ln])
            sb = self._blocks[start].sblock
            for mnem, c in sb.mnem_counts.items():
                bm[mnem] += c * execs
            for cat, c in sb.cat_counts.items():
                bc[cat] += c * execs
            for pc in sb.pc_list:
                pcs[pc] += execs
            t.mem_accesses += sb.mem_count * execs
            if sb.term is not None:
                bm[sb.term[6]] += execs
                bc[sb.term[7]] += execs
                pcs[sb.term[2]] += execs
                t.branches_taken += takens
        return t

    def _drain_all(self, bt: _Batch, out, prefix: int = 0,
                   sblock=None) -> None:
        """Materialize every lane of ``bt`` into a scalar simulator and
        run it to completion from ``bt.pc``.

        ``prefix`` straight-line entries of ``sblock`` (already applied
        to the batch state but not to its deferred counters) are
        recorded entry by entry, reproducing the scalar engine's
        mid-block bookkeeping before the resume takes over.
        """
        tpl = self.tpl
        # Batches that never re-converged share one history: build the
        # prototype trace once and clone it per lane.
        uniform = (type(bt.cycles) is int and type(bt.instret) is int
                   and all(type(v[0]) is int and type(v[1]) is int
                           for v in bt.counts.values()))
        if uniform and bt.n > 1:
            o0 = bt.orders[0]
            uniform = all(o is o0 or o == o0 for o in bt.orders[1:])
        proto = self._lane_proto(bt, 0) if uniform else None
        exec_base = bt.executed
        for ln in range(bt.n):
            t = (_clone_trace(proto) if uniform
                 else self._lane_proto(bt, ln))
            executed = (exec_base if type(exec_base) is int
                        else int(exec_base[ln])) + prefix
            if prefix:
                for k in range(prefix):
                    _fn, instr, epc = sblock.entries[k]
                    t.record(instr, sblock.costs[k], pc=epc)
            sim = Simulator(merged_regfile=tpl.machine.merged_regfile,
                            flen=tpl.machine.flen,
                            timing=tpl.timing.config,
                            fast_path=tpl.fast_path)
            sim.program = tpl.program
            sim._decode_cache = tpl._decode_cache
            m = sim.machine
            m.pc = bt.pc
            xr = m.xregs
            for r in range(1, 32):
                v = bt.xregs[r]
                xr[r] = v if type(v) is int else int(v[ln])
            m.memory._pages = bt.mem.lane_pages(int(bt.lane_ids[ln]))
            csr = m.csr
            csr.fflags = (bt.fflags if type(bt.fflags) is int
                          else int(bt.fflags[ln]))
            csr.frm = bt.frm
            for name, val in bt.trap_csrs.items():
                setattr(csr, name, val)
            lane_id = int(bt.lane_ids[ln])
            if self._sr_keys:
                prev = set_sr_key(self._sr_keys[lane_id])
                try:
                    out[lane_id] = sim.resume(
                        t, executed=executed,
                        max_instructions=self._budget)
                finally:
                    set_sr_key(prev)
            else:
                out[lane_id] = sim.resume(
                    t, executed=executed, max_instructions=self._budget)


# ----------------------------------------------------------------------
# Module-level binder helpers (no engine state needed)
# ----------------------------------------------------------------------
def _bind_int_rr(i, uf, vf):
    rd, rs1, rs2 = i.rd, i.rs1, i.rs2
    if rd == 0:
        return _nop_entry

    def run(bt, rd=rd, rs1=rs1, rs2=rs2, uf=uf, vf=vf):
        a, b = bt.xregs[rs1], bt.xregs[rs2]
        if type(a) is int and type(b) is int:
            bt.xregs[rd] = uf(a, b)
        else:
            bt.xregs[rd] = vf(bt.read_x_vec(rs1), bt.read_x_vec(rs2))
    return run


def _bind_int_imm(i, uf, vf):
    rd, rs1 = i.rd, i.rs1
    if rd == 0:
        return _nop_entry

    def run(bt, rd=rd, rs1=rs1, uf=uf, vf=vf):
        a = bt.xregs[rs1]
        bt.xregs[rd] = uf(a) if type(a) is int else vf(a)
    return run


def _bind_const(rd, value):
    if rd == 0:
        return _nop_entry

    def run(bt, rd=rd, value=value):
        bt.xregs[rd] = value
    return run


def _bind_load(i, size, sign_bits):
    rd, rs1, imm = i.rd, i.rs1, i.imm

    def run(bt, rd=rd, rs1=rs1, imm=imm, size=size, sign_bits=sign_bits):
        base = bt.xregs[rs1]
        if type(base) is not int:
            base = _devec(base)
        if type(base) is int:
            addr = (base + imm) & MASK32
            value = bt.mem.read(addr, size, bt.midx)
        else:
            addrs = base + _U32(imm & MASK32)
            value = bt.mem.gather(addrs, size, bt.midx)
        if sign_bits:
            if type(value) is int:
                if value & sign_bits:
                    value = (value - (sign_bits << 1)) & MASK32
            else:
                value = np.where(value & _U32(sign_bits),
                                 value - _U32((sign_bits << 1) & MASK32),
                                 value)
        if rd:
            bt.xregs[rd] = value
    return run


def _bind_store(i, size, mask):
    rs1, rs2, imm = i.rs1, i.rs2, i.imm

    def run(bt, rs1=rs1, rs2=rs2, imm=imm, size=size, mask=mask):
        base = bt.xregs[rs1]
        if type(base) is not int:
            base = _devec(base)
        value = bt.xregs[rs2]
        value = value & mask if type(value) is int else value & _U32(mask)
        if type(base) is int:
            addr = (base + imm) & MASK32
            bt.mem.write(addr, value, size, bt.midx)
        else:
            addrs = base + _U32(imm & MASK32)
            bt.mem.scatter(addrs, value, size, bt.midx)
    return run


def _bits_or(a, b):
    if type(a) is int and type(b) is int:
        return a | b
    av = a if type(a) is not int else _U32(a & MASK32)
    bv = b if type(b) is not int else _U32(b & MASK32)
    return av | bv


def _bits_andnot(a, b):
    """``a & ~b`` on 32-bit values (int or vector)."""
    if type(a) is int and type(b) is int:
        return a & ~b
    av = a if type(a) is not int else _U32(a & MASK32)
    bv = b if type(b) is not int else _U32(b & MASK32)
    return av & ~bv


def _clone_trace(p: Trace) -> Trace:
    t = Trace()
    t.instret = p.instret
    t.cycles = p.cycles
    t.by_mnemonic.update(p.by_mnemonic)
    t.by_category.update(p.by_category)
    t.mem_accesses = p.mem_accesses
    t.branches_taken = p.branches_taken
    t.pc_counts.update(p.pc_counts)
    return t


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
class Lane:
    """Staging record for one lockstep lane.

    ``args`` maps integer register numbers to initial values (like the
    ``args`` parameter of :meth:`Simulator.run`); ``stores`` is a list
    of ``(addr, bytes)`` bulk writes applied before execution (the
    harness stages input arrays this way).  ``sr_key`` seeds the
    stochastic-rounding PRF for this lane (only consulted when the run
    rounds with ``RoundingMode.SR``).
    """

    __slots__ = ("args", "stores", "sr_key")

    def __init__(self, args=None, stores=None, sr_key=0):
        self.args = dict(args or {})
        self.stores = list(stores or [])
        self.sr_key = sr_key


def run_lockstep(program, lanes, entry=0, max_instructions: int = 50_000_000,
                 mem_latency=None, timing=None, fast_path=None, frm: int = 0):
    """Run ``lanes`` of ``program`` in lockstep; per-lane RunResults.

    Each element of ``lanes`` is a :class:`Lane`.  Every result is
    bit-identical (trace counters and their insertion order, registers,
    memory, fcsr, exit reason, detail) to a dedicated
    :meth:`Simulator.run` of the same point with the same ``frm`` and
    SR key installed.
    """
    template = Simulator(program=program, mem_latency=mem_latency,
                         timing=timing, fast_path=fast_path)
    engine = LockstepEngine(template)
    return engine.run(lanes, entry=entry, max_instructions=max_instructions,
                      frm=frm)
