"""Architectural trap model (machine-mode exceptions, RISC-V style).

The seed version of this simulator escaped into the host on any guest
misbehaviour: an undecodable word raised ``UnknownInstruction``, a wild
pointer raised a raw memory error, an unimplemented CSR access raised
``IllegalCsr`` -- all Python tracebacks, all fatal to a figure sweep.

This module defines the trap vocabulary instead.  Faulting layers raise
:class:`ArchitecturalTrap` (or one of the precursor exceptions the
simulator translates); :meth:`Simulator.run` catches it, latches
``mcause``/``mepc``/``mtval`` into the CSR file exactly as RISC-V
machine mode would, and returns a :class:`~repro.sim.simulator.RunResult`
with ``exit_reason='trap'`` and a :class:`TrapInfo` diagnostic.  Traps
are precise and terminal: no guest-side handler is vectored to, which is
the behaviour a bare-metal benchmark kernel wants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .. import ReproError

# mcause exception codes (RISC-V privileged spec, interrupt bit clear).
CAUSE_INSTRUCTION_ACCESS_FAULT = 1
CAUSE_ILLEGAL_INSTRUCTION = 2
CAUSE_BREAKPOINT = 3
CAUSE_LOAD_ACCESS_FAULT = 5
CAUSE_STORE_ACCESS_FAULT = 7
CAUSE_ECALL_M = 11

CAUSE_NAMES = {
    CAUSE_INSTRUCTION_ACCESS_FAULT: "instruction access fault",
    CAUSE_ILLEGAL_INSTRUCTION: "illegal instruction",
    CAUSE_BREAKPOINT: "breakpoint",
    CAUSE_LOAD_ACCESS_FAULT: "load access fault",
    CAUSE_STORE_ACCESS_FAULT: "store access fault",
    CAUSE_ECALL_M: "environment call",
}


class ArchitecturalTrap(ReproError):
    """A guest-visible exception on the architectural trap path.

    Raised by the executor (and translated from lower-level errors by
    the simulator); never meant to escape :meth:`Simulator.run`.
    """

    def __init__(self, cause: int, tval: int = 0, detail: str = ""):
        self.cause = cause
        self.tval = tval & 0xFFFFFFFF
        self.detail = detail
        name = CAUSE_NAMES.get(cause, f"cause {cause}")
        super().__init__(detail or name)


@dataclass(frozen=True)
class TrapInfo:
    """Diagnostic record of one taken trap (mirrors the trap CSRs)."""

    cause: int  #: mcause exception code
    mepc: int  #: PC of the faulting instruction
    mtval: int  #: faulting address or instruction word
    instruction: Optional[str] = None  #: disassembly of the faulting instr
    detail: str = ""  #: human-readable context from the raising layer

    @property
    def cause_name(self) -> str:
        return CAUSE_NAMES.get(self.cause, f"cause {self.cause}")

    def __str__(self) -> str:
        where = f"pc={self.mepc:#010x}"
        if self.instruction:
            where += f" ({self.instruction})"
        text = f"{self.cause_name} at {where}, mtval={self.mtval:#010x}"
        if self.detail:
            text += f": {self.detail}"
        return text
