"""RISCY-like cycle model.

RISCY is a 4-stage in-order single-issue core; most instructions retire
in one cycle.  The model charges:

* 1 cycle for ALU / CSR / FP single-cycle operations (FPnew's FMA paths
  are fully pipelined, so throughput is 1 op/cycle);
* the configured data-memory latency for loads and stores (the paper's
  L1/L2/L3 sweep is exactly this knob);
* a taken-branch / jump penalty (pipeline flush);
* multi-cycle latencies for the iterative integer divider and the FP
  divide/sqrt unit (FPnew runs divsqrt multi-cycle, narrower formats
  finish sooner).

Hazard modelling (load-use bubbles) is deliberately omitted: the paper's
speedups derive from instruction counts and memory latency, and RISCY
forwards results aggressively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..isa.instructions import Instr

#: Stall causes the cycle model can attribute, in display order.  Every
#: retired instruction costs 1 base cycle; anything beyond that is a
#: stall charged to exactly one cause:
#:
#: * ``mem``     -- data-memory latency beyond the 1-cycle TCDM hit
#:                  (the paper's L1/L2/L3 knob);
#: * ``control`` -- taken-branch / jump pipeline flushes;
#: * ``div``     -- the iterative integer divider;
#: * ``fp``      -- multi-cycle FP divide/sqrt (FPnew's divsqrt unit).
STALL_CAUSES = ("mem", "control", "div", "fp")

#: Cycles for fdiv/fsqrt per format suffix (FPnew iterates per mantissa
#: bit group; smaller formats converge faster).
_DEFAULT_FDIV = {"s": 11, "h": 7, "ah": 6, "b": 4}
_DEFAULT_FSQRT = {"s": 11, "h": 7, "ah": 6, "b": 4}


@dataclass
class TimingConfig:
    """Tunable latencies of the cycle model."""

    #: Data-memory access latency in cycles (L1=1, L2=10, L3=100).
    mem_latency: int = 1
    #: Extra cycles on a taken branch (pipeline flush).
    branch_taken_penalty: int = 2
    #: Extra cycles on any jump (jal/jalr).
    jump_penalty: int = 1
    #: Iterative integer divide/remainder latency.
    int_div_cycles: int = 32
    #: FP divide latency per format suffix.
    fdiv_cycles: Dict[str, int] = field(
        default_factory=lambda: dict(_DEFAULT_FDIV)
    )
    #: FP square-root latency per format suffix.
    fsqrt_cycles: Dict[str, int] = field(
        default_factory=lambda: dict(_DEFAULT_FSQRT)
    )

    def snapshot_key(self):
        """Hashable fingerprint of every latency knob.

        The block engine bakes static cycle costs into cached blocks;
        it compares this key at the start of each run and flushes the
        cache when the configuration was mutated in between.
        """
        return (
            self.mem_latency,
            self.branch_taken_penalty,
            self.jump_penalty,
            self.int_div_cycles,
            tuple(sorted(self.fdiv_cycles.items())),
            tuple(sorted(self.fsqrt_cycles.items())),
        )


_MEM_KINDS = {"lb", "lh", "lw", "lbu", "lhu", "sb", "sh", "sw", "flw", "fsw"}
_JUMP_KINDS = {"jal", "jalr"}
_BRANCH_KINDS = {"beq", "bne", "blt", "bge", "bltu", "bgeu"}
_DIV_KINDS = {"div", "divu", "rem", "remu"}


@dataclass(frozen=True)
class CycleBreakdown:
    """One retired instruction's cycle cost, split base vs. stall.

    ``total == base + stall`` always, and ``base`` is 1 for every
    instruction in this single-issue model; ``cause`` is one of
    :data:`STALL_CAUSES` when ``stall > 0`` and ``None`` otherwise.
    The profiler aggregates these; :meth:`TimingModel.cycles` keeps
    returning the opaque total for the unprofiled fast path.
    """

    total: int
    cause: Optional[str] = None
    stall: int = 0

    @property
    def base(self) -> int:
        return self.total - self.stall


class TimingModel:
    """Maps one retired instruction to its cycle cost."""

    def __init__(self, config: Optional[TimingConfig] = None):
        self.config = config or TimingConfig()

    def cycles(self, instr: Instr, taken: bool = False) -> int:
        """Cycle cost of ``instr`` (``taken`` set for taken branches)."""
        cfg = self.config
        kind = instr.kind
        if kind in _MEM_KINDS:
            return cfg.mem_latency
        if kind in _BRANCH_KINDS:
            return 1 + (cfg.branch_taken_penalty if taken else 0)
        if kind in _JUMP_KINDS:
            return 1 + cfg.jump_penalty
        if kind in _DIV_KINDS:
            return cfg.int_div_cycles
        if kind in ("fdiv", "vfdiv"):
            return cfg.fdiv_cycles.get(instr.spec.fp_fmt, 11)
        if kind in ("fsqrt", "vfsqrt"):
            return cfg.fsqrt_cycles.get(instr.spec.fp_fmt, 11)
        return 1

    def breakdown(self, instr: Instr, taken: bool = False) -> CycleBreakdown:
        """:meth:`cycles`, with the excess over 1 attributed to a cause.

        The invariant ``breakdown(i, t).total == cycles(i, t)`` holds
        for every instruction and is pinned down by
        ``tests/sim/test_timing_breakdown.py``.
        """
        cfg = self.config
        kind = instr.kind
        if kind in _MEM_KINDS:
            return self._stalled(cfg.mem_latency, "mem")
        if kind in _BRANCH_KINDS:
            if taken:
                return self._stalled(1 + cfg.branch_taken_penalty, "control")
            return CycleBreakdown(1)
        if kind in _JUMP_KINDS:
            return self._stalled(1 + cfg.jump_penalty, "control")
        if kind in _DIV_KINDS:
            return self._stalled(cfg.int_div_cycles, "div")
        if kind in ("fdiv", "vfdiv"):
            return self._stalled(cfg.fdiv_cycles.get(instr.spec.fp_fmt, 11),
                                 "fp")
        if kind in ("fsqrt", "vfsqrt"):
            return self._stalled(cfg.fsqrt_cycles.get(instr.spec.fp_fmt, 11),
                                 "fp")
        return CycleBreakdown(1)

    @staticmethod
    def _stalled(total: int, cause: str) -> CycleBreakdown:
        """A breakdown charging everything past the base cycle to ``cause``."""
        if total <= 1:
            return CycleBreakdown(total)
        return CycleBreakdown(total, cause, total - 1)
