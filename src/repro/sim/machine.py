"""Architectural state of the modelled RISCY core.

The PULP RISCY configuration evaluated in the paper shares one register
file between integer and FP instructions (visible in Fig. 5, where
``lw``, ``vfmul.h`` and ``fmacex.s.h`` all operate on ``a``/``s``
registers).  That merged configuration is the default here; a separate
32-entry FP register file can be selected for standard-RV32F modelling.
"""

from __future__ import annotations

from typing import List, Optional

from .csr import CsrFile
from .memory import Memory

MASK32 = 0xFFFFFFFF


class Machine:
    """Registers, PC, CSRs and memory of one hart."""

    def __init__(
        self,
        memory: Optional[Memory] = None,
        merged_regfile: bool = True,
        flen: int = 32,
    ):
        self.memory = memory if memory is not None else Memory()
        self.merged_regfile = merged_regfile
        self.flen = flen
        self.pc = 0
        self.xregs: List[int] = [0] * 32
        self.fregs: List[int] = [0] * 32
        self.csr = CsrFile()

    # ------------------------------------------------------------------
    # Integer register file (x0 hardwired to zero)
    # ------------------------------------------------------------------
    def read_x(self, reg: int) -> int:
        return self.xregs[reg]

    def read_x_signed(self, reg: int) -> int:
        value = self.xregs[reg]
        return value - (1 << 32) if value & 0x80000000 else value

    def write_x(self, reg: int, value: int) -> None:
        if reg != 0:
            self.xregs[reg] = value & MASK32

    # ------------------------------------------------------------------
    # FP register file (routed to the integer file when merged)
    # ------------------------------------------------------------------
    def read_f(self, reg: int, width: Optional[int] = None) -> int:
        """Read an FP register, truncated to ``width`` bits if given.

        Sub-register reads take the low-order lanes, matching both the
        merged-regfile hardware and the SIMD lane layout (lane 0 in the
        least significant bits).
        """
        value = self.xregs[reg] if self.merged_regfile else self.fregs[reg]
        if width is not None and width < self.flen:
            value &= (1 << width) - 1
        return value

    def write_f(self, reg: int, value: int,
                width: Optional[int] = None) -> None:
        """Write an FP register (narrow scalars are zero-extended)."""
        if width is not None and width < self.flen:
            value &= (1 << width) - 1
        else:
            value &= (1 << self.flen) - 1
        if self.merged_regfile:
            self.write_x(reg, value)
        else:
            self.fregs[reg] = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Machine(pc={self.pc:#x}, merged={self.merged_regfile})"
