"""Tokenizer for the kernel language (a small C subset)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from .. import ReproError
from .typesys import TYPE_KEYWORDS

_CONTROL_KEYWORDS = {"for", "while", "if", "else", "return"}


def KEYWORDS() -> set:
    """Current keyword set (type keywords grow with the format registry)."""
    return set(TYPE_KEYWORDS) | _CONTROL_KEYWORDS

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "+=", "-=", "*=", "/=", "==", "!=", "<=", ">=", "&&", "||",
    "+", "-", "*", "/", "%", "=", "<", ">", "!",
    "(", ")", "{", "}", "[", "]", ";", ",", "&",
]


class LexError(ReproError):
    """A character sequence that is not part of the language."""


@dataclass(frozen=True)
class Token:
    kind: str  # 'int', 'float', 'ident', 'keyword', 'op', 'eof'
    value: object
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.col})"


def tokenize(source: str) -> List[Token]:
    """Turn source text into a token list terminated by an EOF token."""
    tokens: List[Token] = []
    line, col = 1, 1
    i, n = 0, len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise LexError(f"line {line}: unterminated block comment")
            skipped = source[i:end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            i = end + 2
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            is_float = False
            if source.startswith("0x", i) or source.startswith("0X", i):
                i += 2
                while i < n and source[i] in "0123456789abcdefABCDEF":
                    i += 1
                text = source[start:i]
                tokens.append(Token("int", int(text, 16), line, col))
                col += i - start
                continue
            while i < n and source[i].isdigit():
                i += 1
            if i < n and source[i] == ".":
                is_float = True
                i += 1
                while i < n and source[i].isdigit():
                    i += 1
            if i < n and source[i] in "eE":
                is_float = True
                i += 1
                if i < n and source[i] in "+-":
                    i += 1
                while i < n and source[i].isdigit():
                    i += 1
            if i < n and source[i] in "fF":
                is_float = True
                text = source[start:i]
                i += 1
            else:
                text = source[start:i]
            if is_float:
                tokens.append(Token("float", float(text), line, col))
            else:
                tokens.append(Token("int", int(text), line, col))
            col += i - start
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            word = source[start:i]
            kind = ("keyword" if word in TYPE_KEYWORDS
                    or word in _CONTROL_KEYWORDS else "ident")
            tokens.append(Token(kind, word, line, col))
            col += i - start
            continue
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line, col))
                i += len(op)
                col += len(op)
                break
        else:
            raise LexError(f"line {line}, col {col}: unexpected {ch!r}")
    tokens.append(Token("eof", None, line, col))
    return tokens
