"""Semantic analysis: scopes, type checking, implicit conversions.

Walks the AST filling every expression's ``ty`` and inserting implicit
:class:`~repro.compiler.astnodes.Cast` nodes where the extended
conversion rules allow it.  Explicit casts in source map 1:1 to
conversion instructions, implicit ones likewise -- so the cost the paper
attributes to conversions is visible in the generated code.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .astnodes import (
    Assign,
    BinOp,
    Block,
    Call,
    Cast,
    Decl,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    Function,
    If,
    Index,
    IntLit,
    LaneRef,
    Module,
    Return,
    Stmt,
    UnOp,
    Var,
    While,
)
from .. import ReproError
from .intrinsics import INTRINSICS
from .typesys import (
    FLOAT,
    INT,
    VOID,
    FloatType,
    IntType,
    PtrType,
    Type,
    TypeError_,
    VecType,
    can_convert,
    is_float,
    is_vector,
    promote,
)

_ARITH_OPS = {"+", "-", "*", "/"}
_CMP_OPS = {"==", "!=", "<", "<=", ">", ">="}
_LOGIC_OPS = {"&&", "||"}


class SemanticError(ReproError):
    """A type or scope error in the kernel source."""


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.names: Dict[str, Type] = {}

    def declare(self, name: str, ty: Type) -> None:
        if name in self.names:
            raise SemanticError(f"redeclaration of {name!r}")
        self.names[name] = ty

    def lookup(self, name: str) -> Type:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        raise SemanticError(f"undeclared identifier {name!r}")


def _convert(expr: Expr, target: Type) -> Expr:
    """Wrap ``expr`` in an implicit cast to ``target`` if needed."""
    if expr.ty == target:
        return expr
    if not can_convert(expr.ty, target):
        raise SemanticError(f"cannot convert {expr.ty} to {target}")
    cast = Cast(target, expr, implicit=True)
    cast.ty = target
    return cast


class Analyzer:
    """Type-checks one function at a time."""

    def __init__(self):
        self._fn: Optional[Function] = None

    # ------------------------------------------------------------------
    def analyze(self, module: Module) -> Module:
        for fn in module.functions:
            self._fn = fn
            scope = _Scope()
            for param in fn.params:
                scope.declare(param.name, param.ty)
            self._block(fn.body, scope)
        return module

    # ------------------------------------------------------------------
    def _block(self, block: Block, parent: _Scope) -> None:
        scope = _Scope(parent)
        for index, stmt in enumerate(block.stmts):
            block.stmts[index] = self._stmt(stmt, scope)

    def _stmt(self, stmt: Stmt, scope: _Scope) -> Stmt:
        if isinstance(stmt, Block):
            self._block(stmt, scope)
            return stmt
        if isinstance(stmt, Decl):
            if stmt.init is not None:
                self._expr(stmt.init, scope)
                stmt.init = _convert(stmt.init, stmt.ty)
            scope.declare(stmt.name, stmt.ty)
            return stmt
        if isinstance(stmt, Assign):
            target_ty = self._expr(stmt.target, scope)
            if isinstance(stmt.target, Var) and isinstance(
                scope.lookup(stmt.target.name), PtrType
            ):
                raise SemanticError("cannot assign to an array parameter")
            self._expr(stmt.value, scope)
            stmt.value = _convert(stmt.value, target_ty)
            return stmt
        if isinstance(stmt, If):
            self._cond(stmt.cond, scope)
            self._block(stmt.then, scope)
            if stmt.otherwise is not None:
                self._block(stmt.otherwise, scope)
            return stmt
        if isinstance(stmt, While):
            self._cond(stmt.cond, scope)
            self._block(stmt.body, scope)
            return stmt
        if isinstance(stmt, For):
            inner = _Scope(scope)
            if stmt.init is not None:
                stmt.init = self._stmt(stmt.init, inner)
            if stmt.cond is not None:
                self._cond(stmt.cond, inner)
            if stmt.step is not None:
                stmt.step = self._stmt(stmt.step, inner)
            self._block(stmt.body, inner)
            return stmt
        if isinstance(stmt, Return):
            want = self._fn.return_type
            if stmt.value is None:
                if want != VOID:
                    raise SemanticError(
                        f"{self._fn.name}: missing return value"
                    )
            else:
                if want == VOID:
                    raise SemanticError(
                        f"{self._fn.name}: void function returns a value"
                    )
                self._expr(stmt.value, scope)
                stmt.value = _convert(stmt.value, want)
            return stmt
        if isinstance(stmt, ExprStmt):
            self._expr(stmt.expr, scope)
            return stmt
        raise SemanticError(f"unhandled statement {type(stmt).__name__}")

    def _cond(self, expr: Expr, scope: _Scope) -> None:
        ty = self._expr(expr, scope)
        if not isinstance(ty, IntType):
            raise SemanticError(
                "conditions must be integer-typed (use a comparison)"
            )

    # ------------------------------------------------------------------
    def _expr(self, expr: Expr, scope: _Scope) -> Type:
        if expr.ty is not None:
            return expr.ty
        ty = self._expr_inner(expr, scope)
        expr.ty = ty
        return ty

    def _expr_inner(self, expr: Expr, scope: _Scope) -> Type:
        if isinstance(expr, IntLit):
            return INT
        if isinstance(expr, FloatLit):
            return FLOAT
        if isinstance(expr, Var):
            return scope.lookup(expr.name)
        if isinstance(expr, Index):
            base_ty = self._expr(expr.base, scope)
            if isinstance(base_ty, VecType):
                if not isinstance(expr.index, IntLit):
                    raise SemanticError("vector lanes need constant indices")
                if not 0 <= expr.index.value < base_ty.lanes:
                    raise SemanticError(
                        f"lane {expr.index.value} out of range for {base_ty}"
                    )
                # Rewrite in place into a LaneRef.
                lane_ref = LaneRef(expr.base, expr.index.value)
                lane_ref.ty = base_ty.elem
                expr.__class__ = LaneRef
                expr.__dict__.clear()
                expr.__dict__.update(lane_ref.__dict__)
                return base_ty.elem
            if not isinstance(base_ty, PtrType):
                raise SemanticError(f"cannot index a {base_ty}")
            index_ty = self._expr(expr.index, scope)
            if not isinstance(index_ty, IntType):
                raise SemanticError("array indices must be integers")
            return base_ty.elem
        if isinstance(expr, LaneRef):
            base_ty = self._expr(expr.base, scope)
            return base_ty.elem
        if isinstance(expr, UnOp):
            operand_ty = self._expr(expr.operand, scope)
            if expr.op == "-":
                if not (isinstance(operand_ty, IntType) or is_float(operand_ty)
                        or is_vector(operand_ty)):
                    raise SemanticError(f"cannot negate {operand_ty}")
                return operand_ty
            if expr.op == "!":
                if not isinstance(operand_ty, IntType):
                    raise SemanticError("'!' needs an integer operand")
                return INT
            raise SemanticError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, BinOp):
            return self._binop(expr, scope)
        if isinstance(expr, Cast):
            self._expr(expr.operand, scope)
            src, dst = expr.operand.ty, expr.target
            scalar = (IntType, FloatType)
            if isinstance(src, scalar) and isinstance(dst, scalar):
                return dst
            if src == dst:
                return dst
            # Pointer reinterpretation, e.g. (float16v*)C for manual
            # vectorization over a scalar array.
            if isinstance(src, PtrType) and isinstance(dst, PtrType):
                return dst
            raise SemanticError(f"invalid cast from {src} to {dst}")
        if isinstance(expr, Call):
            return self._call(expr, scope)
        raise SemanticError(f"unhandled expression {type(expr).__name__}")

    def _binop(self, expr: BinOp, scope: _Scope) -> Type:
        left_ty = self._expr(expr.left, scope)
        right_ty = self._expr(expr.right, scope)
        op = expr.op
        if op in _LOGIC_OPS:
            if not (isinstance(left_ty, IntType)
                    and isinstance(right_ty, IntType)):
                raise SemanticError(f"{op!r} needs integer operands")
            return INT
        if op == "%":
            if not (isinstance(left_ty, IntType)
                    and isinstance(right_ty, IntType)):
                raise SemanticError("'%' needs integer operands")
            return INT
        if op in _ARITH_OPS:
            # Pointer arithmetic: ptr +/- int (and int + ptr), scaled by
            # the element size in codegen, as in C.
            if isinstance(left_ty, PtrType) and isinstance(right_ty, IntType):
                if op not in ("+", "-"):
                    raise SemanticError(f"{op!r} is not pointer arithmetic")
                return left_ty
            if (op == "+" and isinstance(left_ty, IntType)
                    and isinstance(right_ty, PtrType)):
                expr.left, expr.right = expr.right, expr.left
                return right_ty
            if is_vector(left_ty) or is_vector(right_ty):
                if left_ty == right_ty:
                    return left_ty
                # Vector op scalar-of-element-type: a broadcast, served
                # by the ``.r`` replicating instruction variants.  The
                # scalar must sit in rs2, so commutative ops commute.
                vec, scalar_side = (
                    (left_ty, "right") if is_vector(left_ty)
                    else (right_ty, "left")
                )
                scalar_expr = expr.right if scalar_side == "right" else expr.left
                if scalar_expr.ty == vec.elem or (
                    isinstance(scalar_expr.ty, (IntType, FloatType))
                    and can_convert(scalar_expr.ty, vec.elem)
                ):
                    converted = _convert(scalar_expr, vec.elem)
                    if scalar_side == "left":
                        if op not in ("+", "*"):
                            raise SemanticError(
                                f"broadcast scalar must be the right "
                                f"operand of {op!r}"
                            )
                        expr.left, expr.right = expr.right, converted
                    else:
                        expr.right = converted
                    expr.repl = True
                    return vec
                raise SemanticError(
                    f"vector arithmetic needs matching types "
                    f"({left_ty} vs {right_ty})"
                )
            try:
                common = promote(left_ty, right_ty)
            except TypeError_ as exc:
                raise SemanticError(str(exc)) from None
            expr.left = _convert(expr.left, common)
            expr.right = _convert(expr.right, common)
            return common
        if op in _CMP_OPS:
            if is_vector(left_ty) or is_vector(right_ty):
                raise SemanticError("vector comparisons are not supported "
                                    "in expressions")
            try:
                common = promote(left_ty, right_ty)
            except TypeError_ as exc:
                raise SemanticError(str(exc)) from None
            expr.left = _convert(expr.left, common)
            expr.right = _convert(expr.right, common)
            return INT
        raise SemanticError(f"unknown operator {op!r}")

    def _call(self, expr: Call, scope: _Scope) -> Type:
        intr = INTRINSICS.get(expr.name)
        if intr is None:
            raise SemanticError(f"unknown function or intrinsic {expr.name!r}")
        if len(expr.args) != len(intr.params):
            raise SemanticError(
                f"{expr.name} expects {len(intr.params)} arguments, "
                f"got {len(expr.args)}"
            )
        for index, (arg, want) in enumerate(zip(expr.args, intr.params)):
            self._expr(arg, scope)
            expr.args[index] = _convert(arg, want)
        return intr.result


def analyze(module: Module) -> Module:
    """Run semantic analysis, mutating and returning the module."""
    return Analyzer().analyze(module)
