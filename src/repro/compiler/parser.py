"""Recursive-descent parser for the kernel language."""

from __future__ import annotations

import copy
from typing import List, Optional

from .. import ReproError
from .astnodes import (
    Assign,
    BinOp,
    Block,
    Call,
    Cast,
    Decl,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    Function,
    If,
    Index,
    IntLit,
    Module,
    Param,
    Return,
    Stmt,
    UnOp,
    Var,
    While,
)
from .lexer import Token, tokenize
from .typesys import TYPE_KEYWORDS, PtrType, Type, VOID


class ParseError(ReproError):
    """A syntax error with source position."""


class Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def _peek(self, offset: int = 1) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def _error(self, message: str) -> ParseError:
        tok = self.current
        return ParseError(f"line {tok.line}, col {tok.col}: {message} "
                          f"(found {tok.value!r})")

    def _advance(self) -> Token:
        tok = self.current
        self.pos += 1
        return tok

    def _accept(self, kind: str, value=None) -> Optional[Token]:
        tok = self.current
        if tok.kind != kind:
            return None
        if value is not None and tok.value != value:
            return None
        return self._advance()

    def _expect(self, kind: str, value=None) -> Token:
        tok = self._accept(kind, value)
        if tok is None:
            want = value if value is not None else kind
            raise self._error(f"expected {want!r}")
        return tok

    def _at_type(self) -> bool:
        return (self.current.kind == "keyword"
                and self.current.value in TYPE_KEYWORDS)

    # ------------------------------------------------------------------
    # Grammar
    # ------------------------------------------------------------------
    def parse_module(self) -> Module:
        functions = []
        while self.current.kind != "eof":
            functions.append(self.parse_function())
        return Module(functions)

    def _parse_type(self) -> Type:
        tok = self._expect("keyword")
        if tok.value not in TYPE_KEYWORDS:
            raise self._error(f"expected a type, got {tok.value!r}")
        ty: Type = TYPE_KEYWORDS[tok.value]
        while self._accept("op", "*"):
            ty = PtrType(f"{ty.name}*", elem=ty)
        return ty

    def parse_function(self) -> Function:
        return_type = self._parse_type()
        name = self._expect("ident").value
        self._expect("op", "(")
        params: List[Param] = []
        if not self._accept("op", ")"):
            while True:
                ty = self._parse_type()
                pname = self._expect("ident").value
                params.append(Param(pname, ty))
                if self._accept("op", ")"):
                    break
                self._expect("op", ",")
        body = self.parse_block()
        return Function(name, params, return_type, body)

    def parse_block(self) -> Block:
        self._expect("op", "{")
        stmts: List[Stmt] = []
        while not self._accept("op", "}"):
            stmts.append(self.parse_stmt())
        return Block(stmts)

    def parse_stmt(self) -> Stmt:
        if self.current.kind == "op" and self.current.value == "{":
            return self.parse_block()
        if self._at_type():
            return self._parse_decl()
        if self.current.kind == "keyword":
            kw = self.current.value
            if kw == "if":
                return self._parse_if()
            if kw == "for":
                return self._parse_for()
            if kw == "while":
                return self._parse_while()
            if kw == "return":
                self._advance()
                if self._accept("op", ";"):
                    return Return(None)
                value = self.parse_expr()
                self._expect("op", ";")
                return Return(value)
        stmt = self._parse_simple()
        self._expect("op", ";")
        return stmt

    def _parse_decl(self) -> Decl:
        ty = self._parse_type()
        name = self._expect("ident").value
        init = None
        if self._accept("op", "="):
            init = self.parse_expr()
        self._expect("op", ";")
        return Decl(name, ty, init)

    def _parse_if(self) -> If:
        self._expect("keyword", "if")
        self._expect("op", "(")
        cond = self.parse_expr()
        self._expect("op", ")")
        then = self._stmt_as_block()
        otherwise = None
        if self._accept("keyword", "else"):
            otherwise = self._stmt_as_block()
        return If(cond, then, otherwise)

    def _stmt_as_block(self) -> Block:
        stmt = self.parse_stmt()
        return stmt if isinstance(stmt, Block) else Block([stmt])

    def _parse_for(self) -> For:
        self._expect("keyword", "for")
        self._expect("op", "(")
        init: Optional[Stmt] = None
        if not self._accept("op", ";"):
            if self._at_type():
                ty = self._parse_type()
                name = self._expect("ident").value
                value = None
                if self._accept("op", "="):
                    value = self.parse_expr()
                init = Decl(name, ty, value)
            else:
                init = self._parse_simple()
            self._expect("op", ";")
        cond = None
        if not self._accept("op", ";"):
            cond = self.parse_expr()
            self._expect("op", ";")
        step = None
        if not self._accept("op", ")"):
            step = self._parse_simple()
            self._expect("op", ")")
        body = self._stmt_as_block()
        return For(init, cond, step, body)

    def _parse_while(self) -> While:
        self._expect("keyword", "while")
        self._expect("op", "(")
        cond = self.parse_expr()
        self._expect("op", ")")
        return While(cond, self._stmt_as_block())

    def _parse_simple(self) -> Stmt:
        """Assignment (possibly compound) or a bare expression."""
        expr = self.parse_expr()
        for op in ("=", "+=", "-=", "*=", "/="):
            if self._accept("op", op):
                if not isinstance(expr, (Var, Index)):
                    raise self._error("assignment target must be a variable "
                                      "or array element")
                value = self.parse_expr()
                if op != "=":
                    value = BinOp(op[0], copy.deepcopy(expr), value)
                return Assign(expr, value)
        return ExprStmt(expr)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    def parse_expr(self) -> Expr:
        return self._parse_logical_or()

    def _parse_logical_or(self) -> Expr:
        left = self._parse_logical_and()
        while self._accept("op", "||"):
            left = BinOp("||", left, self._parse_logical_and())
        return left

    def _parse_logical_and(self) -> Expr:
        left = self._parse_equality()
        while self._accept("op", "&&"):
            left = BinOp("&&", left, self._parse_equality())
        return left

    def _parse_equality(self) -> Expr:
        left = self._parse_relational()
        while True:
            for op in ("==", "!="):
                if self._accept("op", op):
                    left = BinOp(op, left, self._parse_relational())
                    break
            else:
                return left

    def _parse_relational(self) -> Expr:
        left = self._parse_additive()
        while True:
            for op in ("<=", ">=", "<", ">"):
                if self._accept("op", op):
                    left = BinOp(op, left, self._parse_additive())
                    break
            else:
                return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while True:
            for op in ("+", "-"):
                if self._accept("op", op):
                    left = BinOp(op, left, self._parse_multiplicative())
                    break
            else:
                return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while True:
            for op in ("*", "/", "%"):
                if self._accept("op", op):
                    left = BinOp(op, left, self._parse_unary())
                    break
            else:
                return left

    def _parse_unary(self) -> Expr:
        if self._accept("op", "-"):
            return UnOp("-", self._parse_unary())
        if self._accept("op", "!"):
            return UnOp("!", self._parse_unary())
        # Cast: '(' typename ... ')'
        if (self.current.kind == "op" and self.current.value == "("
                and self._peek().kind == "keyword"
                and self._peek().value in TYPE_KEYWORDS):
            self._advance()
            target = self._parse_type()
            self._expect("op", ")")
            return Cast(target, self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while self._accept("op", "["):
            index = self.parse_expr()
            self._expect("op", "]")
            expr = Index(expr, index)
        return expr

    def _parse_primary(self) -> Expr:
        tok = self.current
        if tok.kind == "int":
            self._advance()
            return IntLit(tok.value)
        if tok.kind == "float":
            self._advance()
            return FloatLit(tok.value)
        if tok.kind == "ident":
            self._advance()
            if self._accept("op", "("):
                args: List[Expr] = []
                if not self._accept("op", ")"):
                    while True:
                        args.append(self.parse_expr())
                        if self._accept("op", ")"):
                            break
                        self._expect("op", ",")
                return Call(tok.value, args)
            return Var(tok.value)
        if self._accept("op", "("):
            expr = self.parse_expr()
            self._expect("op", ")")
            return expr
        raise self._error("expected an expression")


def parse(source: str) -> Module:
    """Parse a translation unit into a :class:`Module`."""
    return Parser(tokenize(source)).parse_module()
