"""Kernel compiler with smallFloat type-system and vector support.

The GCC-extension substitute (paper Section IV): a C-subset compiler
exposing ``float16`` / ``float16alt`` / ``float8`` keywords, extended
conversion rules, an auto-vectorization pass and intrinsics for the
Xfvec / Xfaux instructions.
"""

from .astnodes import Module
from .codegen import CodegenError, generate
from .intrinsics import INTRINSICS, Intrinsic, lookup_intrinsic
from .lexer import LexError, tokenize
from .optimize import fold_constants
from .parser import ParseError, parse
from .pipeline import CompiledKernel, compile_source
from .semantic import SemanticError, analyze
from .typesys import (
    FLOAT,
    FLOAT8,
    FLOAT8V,
    FLOAT16,
    FLOAT16ALT,
    FLOAT16V,
    INT,
    TypeError_,
)
from .vectorize import VectorizeReport, vectorize

__all__ = [
    "Module",
    "CodegenError",
    "generate",
    "INTRINSICS",
    "Intrinsic",
    "lookup_intrinsic",
    "LexError",
    "tokenize",
    "fold_constants",
    "ParseError",
    "parse",
    "CompiledKernel",
    "compile_source",
    "SemanticError",
    "analyze",
    "FLOAT",
    "FLOAT8",
    "FLOAT8V",
    "FLOAT16",
    "FLOAT16ALT",
    "FLOAT16V",
    "INT",
    "TypeError_",
    "VectorizeReport",
    "vectorize",
]
