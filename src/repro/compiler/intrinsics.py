"""Compiler intrinsics exposing the Xfvec / Xfaux instructions.

Section IV: "we have provided a set of compiler intrinsics which provide
access to the operations included in the Xfvec and Xfaux ISA extensions".
These are what a programmer uses for *manual* vectorization (Fig. 5's
``__macex_vf16`` corresponds to our ``__dotpex_f16`` / ``__macex_f16``).

Each intrinsic maps to exactly one instruction; the code generator emits
it directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .typesys import (
    FLOAT,
    FLOAT8,
    FLOAT8V,
    FLOAT16,
    FLOAT16ALT,
    FLOAT16ALTV,
    FLOAT16V,
    Type,
)


@dataclass(frozen=True)
class Intrinsic:
    """Signature and target instruction of one intrinsic."""

    name: str
    params: Tuple[Type, ...]
    result: Type
    mnemonic: str
    #: 'dotp'/'macex' accumulate into their first argument (rd is a
    #: source); 'cpk2' modifies its first argument's other lanes.
    style: str = "plain"


INTRINSICS = {
    i.name: i
    for i in [
        # Expanding SIMD dot products (vfdotpex.s.<fmt>).
        Intrinsic("__dotpex_f16", (FLOAT, FLOAT16V, FLOAT16V), FLOAT,
                  "vfdotpex.s.h", style="dotp"),
        Intrinsic("__dotpex_f16alt", (FLOAT, FLOAT16ALTV, FLOAT16ALTV), FLOAT,
                  "vfdotpex.s.ah", style="dotp"),
        Intrinsic("__dotpex_f8", (FLOAT, FLOAT8V, FLOAT8V), FLOAT,
                  "vfdotpex.s.b", style="dotp"),
        # Expanding scalar multiply-accumulate (fmacex.s.<fmt>).
        Intrinsic("__macex_f16", (FLOAT, FLOAT16, FLOAT16), FLOAT,
                  "fmacex.s.h", style="macex"),
        Intrinsic("__macex_f16alt", (FLOAT, FLOAT16ALT, FLOAT16ALT), FLOAT,
                  "fmacex.s.ah", style="macex"),
        Intrinsic("__macex_f8", (FLOAT, FLOAT8, FLOAT8), FLOAT,
                  "fmacex.s.b", style="macex"),
        # Expanding multiplies (fmulex.s.<fmt>).
        Intrinsic("__mulex_f16", (FLOAT16, FLOAT16), FLOAT, "fmulex.s.h"),
        Intrinsic("__mulex_f8", (FLOAT8, FLOAT8), FLOAT, "fmulex.s.b"),
        # Cast-and-pack (vfcpka/vfcpkb).
        Intrinsic("__cpk_f16", (FLOAT, FLOAT), FLOAT16V, "vfcpka.h.s"),
        Intrinsic("__cpk_f16alt", (FLOAT, FLOAT), FLOAT16ALTV, "vfcpka.ah.s"),
        Intrinsic("__cpka_f8", (FLOAT8V, FLOAT, FLOAT), FLOAT8V,
                  "vfcpka.b.s", style="cpk2"),
        Intrinsic("__cpkb_f8", (FLOAT8V, FLOAT, FLOAT), FLOAT8V,
                  "vfcpkb.b.s", style="cpk2"),
        # Square roots.
        Intrinsic("__sqrt_f32", (FLOAT,), FLOAT, "fsqrt.s"),
        Intrinsic("__sqrt_f16", (FLOAT16,), FLOAT16, "fsqrt.h"),
        Intrinsic("__sqrt_f16alt", (FLOAT16ALT,), FLOAT16ALT, "fsqrt.ah"),
        Intrinsic("__sqrt_f8", (FLOAT8,), FLOAT8, "fsqrt.b"),
        Intrinsic("__vsqrt_f16", (FLOAT16V,), FLOAT16V, "vfsqrt.h"),
        Intrinsic("__vsqrt_f8", (FLOAT8V,), FLOAT8V, "vfsqrt.b"),
        # Min/max.
        Intrinsic("__fmin_f32", (FLOAT, FLOAT), FLOAT, "fmin.s"),
        Intrinsic("__fmax_f32", (FLOAT, FLOAT), FLOAT, "fmax.s"),
        Intrinsic("__fmin_f16", (FLOAT16, FLOAT16), FLOAT16, "fmin.h"),
        Intrinsic("__fmax_f16", (FLOAT16, FLOAT16), FLOAT16, "fmax.h"),
        Intrinsic("__vfmin_f16", (FLOAT16V, FLOAT16V), FLOAT16V, "vfmin.h"),
        Intrinsic("__vfmax_f16", (FLOAT16V, FLOAT16V), FLOAT16V, "vfmax.h"),
    ]
}


def lookup_intrinsic(name: str) -> Intrinsic:
    try:
        return INTRINSICS[name]
    except KeyError:
        raise KeyError(f"unknown intrinsic {name!r}") from None
