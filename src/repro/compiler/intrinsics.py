"""Compiler intrinsics exposing the Xfvec / Xfaux instructions.

Section IV: "we have provided a set of compiler intrinsics which provide
access to the operations included in the Xfvec and Xfaux ISA extensions".
These are what a programmer uses for *manual* vectorization (Fig. 5's
``__macex_vf16`` corresponds to our ``__dotpex_f16`` / ``__macex_f16``).

Each intrinsic maps to exactly one instruction; the code generator emits
it directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..fp import registry
from ..fp.registry import NumberFormat
from .typesys import (
    FLOAT,
    FLOAT8,
    FLOAT8V,
    FLOAT16,
    FLOAT16ALT,
    FLOAT16ALTV,
    FLOAT16V,
    TYPE_KEYWORDS,
    VEC_OF,
    Type,
)


@dataclass(frozen=True)
class Intrinsic:
    """Signature and target instruction of one intrinsic."""

    name: str
    params: Tuple[Type, ...]
    result: Type
    mnemonic: str
    #: 'dotp'/'macex' accumulate into their first argument (rd is a
    #: source); 'cpk2' modifies its first argument's other lanes.
    style: str = "plain"


INTRINSICS = {
    i.name: i
    for i in [
        # Expanding SIMD dot products (vfdotpex.s.<fmt>).
        Intrinsic("__dotpex_f16", (FLOAT, FLOAT16V, FLOAT16V), FLOAT,
                  "vfdotpex.s.h", style="dotp"),
        Intrinsic("__dotpex_f16alt", (FLOAT, FLOAT16ALTV, FLOAT16ALTV), FLOAT,
                  "vfdotpex.s.ah", style="dotp"),
        Intrinsic("__dotpex_f8", (FLOAT, FLOAT8V, FLOAT8V), FLOAT,
                  "vfdotpex.s.b", style="dotp"),
        # Expanding scalar multiply-accumulate (fmacex.s.<fmt>).
        Intrinsic("__macex_f16", (FLOAT, FLOAT16, FLOAT16), FLOAT,
                  "fmacex.s.h", style="macex"),
        Intrinsic("__macex_f16alt", (FLOAT, FLOAT16ALT, FLOAT16ALT), FLOAT,
                  "fmacex.s.ah", style="macex"),
        Intrinsic("__macex_f8", (FLOAT, FLOAT8, FLOAT8), FLOAT,
                  "fmacex.s.b", style="macex"),
        # Expanding multiplies (fmulex.s.<fmt>).
        Intrinsic("__mulex_f16", (FLOAT16, FLOAT16), FLOAT, "fmulex.s.h"),
        Intrinsic("__mulex_f8", (FLOAT8, FLOAT8), FLOAT, "fmulex.s.b"),
        # Cast-and-pack (vfcpka/vfcpkb).
        Intrinsic("__cpk_f16", (FLOAT, FLOAT), FLOAT16V, "vfcpka.h.s"),
        Intrinsic("__cpk_f16alt", (FLOAT, FLOAT), FLOAT16ALTV, "vfcpka.ah.s"),
        Intrinsic("__cpka_f8", (FLOAT8V, FLOAT, FLOAT), FLOAT8V,
                  "vfcpka.b.s", style="cpk2"),
        Intrinsic("__cpkb_f8", (FLOAT8V, FLOAT, FLOAT), FLOAT8V,
                  "vfcpkb.b.s", style="cpk2"),
        # Square roots.
        Intrinsic("__sqrt_f32", (FLOAT,), FLOAT, "fsqrt.s"),
        Intrinsic("__sqrt_f16", (FLOAT16,), FLOAT16, "fsqrt.h"),
        Intrinsic("__sqrt_f16alt", (FLOAT16ALT,), FLOAT16ALT, "fsqrt.ah"),
        Intrinsic("__sqrt_f8", (FLOAT8,), FLOAT8, "fsqrt.b"),
        Intrinsic("__vsqrt_f16", (FLOAT16V,), FLOAT16V, "vfsqrt.h"),
        Intrinsic("__vsqrt_f8", (FLOAT8V,), FLOAT8V, "vfsqrt.b"),
        # Min/max.
        Intrinsic("__fmin_f32", (FLOAT, FLOAT), FLOAT, "fmin.s"),
        Intrinsic("__fmax_f32", (FLOAT, FLOAT), FLOAT, "fmax.s"),
        Intrinsic("__fmin_f16", (FLOAT16, FLOAT16), FLOAT16, "fmin.h"),
        Intrinsic("__fmax_f16", (FLOAT16, FLOAT16), FLOAT16, "fmax.h"),
        Intrinsic("__vfmin_f16", (FLOAT16V, FLOAT16V), FLOAT16V, "vfmin.h"),
        Intrinsic("__vfmax_f16", (FLOAT16V, FLOAT16V), FLOAT16V, "vfmax.h"),
    ]
}


def _register_format_intrinsics(fmt: NumberFormat) -> None:
    """Derive intrinsics for a guest format from its registry entry.

    The paper's IEEE intrinsics above stay statically defined; guest
    extensions (Xposit, Xmx8) get the same families keyed by their C
    keyword: expanding multiply/mac, SIMD dot product when the format
    packs into vectors, and the shared-exponent block dot product when
    the format defines one.  Block operands travel as opaque 32-bit
    values (``float``-typed in the kernel language: the merged register
    file preserves raw bits through loads and moves).
    """
    if fmt.ieee or not fmt.kernel_type:
        return
    ty = TYPE_KEYWORDS.get(fmt.c_keyword)
    if ty is None:  # kernel-language type not derived (no keyword)
        return
    sfx, kw = fmt.suffix, fmt.c_keyword
    derived = [
        Intrinsic(f"__macex_{kw}", (FLOAT, ty, ty), FLOAT,
                  f"fmacex.s.{sfx}", style="macex"),
        Intrinsic(f"__mulex_{kw}", (ty, ty), FLOAT, f"fmulex.s.{sfx}"),
        Intrinsic(f"__sqrt_{kw}", (ty,), ty, f"fsqrt.{sfx}"),
    ]
    vty = VEC_OF.get(ty)
    if vty is not None:
        derived.append(Intrinsic(f"__dotpex_{kw}", (FLOAT, vty, vty), FLOAT,
                                 f"vfdotpex.s.{sfx}", style="dotp"))
        derived.append(Intrinsic(f"__vsqrt_{kw}", (vty,), vty,
                                 f"vfsqrt.{sfx}"))
    if fmt.has_block_dotp:
        derived.append(Intrinsic(f"__dotp{sfx}", (FLOAT, FLOAT, FLOAT),
                                 FLOAT, f"vfdotpmx.s.{sfx}", style="dotp"))
    for intrinsic in derived:
        INTRINSICS.setdefault(intrinsic.name, intrinsic)


registry.on_register(_register_format_intrinsics)


def lookup_intrinsic(name: str) -> Intrinsic:
    try:
        return INTRINSICS[name]
    except KeyError:
        raise KeyError(f"unknown intrinsic {name!r}") from None
