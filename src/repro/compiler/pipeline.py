"""The compile() driver: source text -> assembled Program.

Mirrors the paper's three build configurations:

* ``vectorize=False`` -- scalar code (possibly using smallFloat scalar
  instructions, depending on the source's types);
* ``vectorize=True``  -- the auto-vectorizer pass rewrites eligible
  loops (Section IV);
* manual vectorization needs no flag: the programmer writes vector
  types and intrinsics directly (Fig. 5 right).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..isa.assembler import DATA_BASE, TEXT_BASE, Program, assemble
from .astnodes import Module
from .codegen import generate
from .optimize import fold_constants
from .parser import parse
from .semantic import analyze
from .vectorize import VectorizeReport, vectorize


@dataclass
class CompiledKernel:
    """The result of compiling one translation unit."""

    asm: str
    program: Program
    module: Module
    vector_report: Optional[VectorizeReport] = None
    #: Static-analysis result over the assembled output (populated when
    #: compiling with ``lint=True``, the default).  Typed loosely to
    #: keep the compiler importable without the analysis package.
    lint_result: Optional[object] = None

    def entry(self, name: str) -> int:
        """Address of a compiled function."""
        return self.program.address_of(name)

    @property
    def lint_findings(self) -> list:
        """Lint findings from compilation ([] when linting was off)."""
        if self.lint_result is None:
            return []
        return list(self.lint_result.findings)


def compile_source(
    source: str,
    vectorize_loops: bool = False,
    text_base: int = TEXT_BASE,
    data_base: int = DATA_BASE,
    lint: bool = True,
    expanding_reductions: bool = False,
) -> CompiledKernel:
    """Compile kernel source down to an assembled program.

    With ``lint=True`` (the default) the static analyzer runs over the
    assembled output and its findings ride along on
    :attr:`CompiledKernel.lint_result`; compiled code should be clean,
    so anything it reports points at a codegen regression.

    ``expanding_reductions`` upgrades the auto-vectorizer's reduction
    strategy from multiply-then-unpack to the Xfaux expanding dot
    product for binary32 accumulators (only meaningful together with
    ``vectorize_loops``; the default keeps the paper's GCC behaviour).
    """
    module = parse(source)
    analyze(module)
    fold_constants(module)
    report = None
    if vectorize_loops:
        report = vectorize(module, expanding=expanding_reductions)
    asm = "\n".join(generate(fn) for fn in module.functions)
    program = assemble(asm, text_base=text_base, data_base=data_base)
    lint_result = None
    if lint:
        # Imported here: the analysis package depends on repro.isa only,
        # but keeping the compiler core import-light is still worthwhile.
        from ..analysis.lints import lint_program

        lint_result = lint_program(program, vector_report=report, source=asm)
    return CompiledKernel(asm=asm, program=program, module=module,
                          vector_report=report, lint_result=lint_result)
