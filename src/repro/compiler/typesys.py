"""The type system of the kernel language, with smallFloat extensions.

Section IV of the paper: "we have extended the standard C/C++ type
system by introducing a new set of keywords (float8, float16 and
float16alt) and extending the conversion rules to guarantee a correct
behavior".  This module is that type system:

* scalar types: ``int``, ``float``, ``float16``, ``float16alt``,
  ``float8`` (each FP type carries its :class:`~repro.fp.formats.FloatFormat`);
* vector types ``float16v`` / ``float8v`` for manual vectorization
  (2 and 4 lanes in a 32-bit register, paper Table II);
* pointer types for array parameters.

Conversion rules: FP types order by (range, precision) rank; mixing two
FP types in an arithmetic operation promotes to the higher-ranked one.
``float16`` and ``float16alt`` are unordered (one has more precision,
the other more range), so mixing them requires an explicit cast --
exactly the GCC extension's behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .. import ReproError
from ..fp import registry
from ..fp.formats import (
    BINARY8,
    BINARY16,
    BINARY16ALT,
    BINARY32,
    FloatFormat,
)
from ..fp.registry import NumberFormat


class TypeError_(ReproError):
    """A type-checking failure (named to avoid shadowing the builtin)."""


@dataclass(frozen=True)
class Type:
    """Base class for all kernel-language types."""

    name: str

    @property
    def size(self) -> int:
        raise NotImplementedError

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class IntType(Type):
    @property
    def size(self) -> int:
        return 4


@dataclass(frozen=True)
class FloatType(Type):
    fmt: FloatFormat = None

    @property
    def size(self) -> int:
        return self.fmt.width // 8

    @property
    def suffix(self) -> str:
        """ISA mnemonic suffix (``fadd.<suffix>``)."""
        return self.fmt.suffix


@dataclass(frozen=True)
class VecType(Type):
    """A packed vector of smallFloat lanes filling one 32-bit register."""

    elem: FloatType = None

    @property
    def size(self) -> int:
        return 4

    @property
    def lanes(self) -> int:
        return 4 // self.elem.size

    @property
    def suffix(self) -> str:
        return self.elem.suffix


@dataclass(frozen=True)
class PtrType(Type):
    elem: Type = None

    @property
    def size(self) -> int:
        return 4


@dataclass(frozen=True)
class VoidType(Type):
    @property
    def size(self) -> int:
        raise TypeError_("void has no size")


INT = IntType("int")
FLOAT = FloatType("float", BINARY32)
FLOAT16 = FloatType("float16", BINARY16)
FLOAT16ALT = FloatType("float16alt", BINARY16ALT)
FLOAT8 = FloatType("float8", BINARY8)
FLOAT16V = VecType("float16v", elem=FLOAT16)
FLOAT16ALTV = VecType("float16altv", elem=FLOAT16ALT)
FLOAT8V = VecType("float8v", elem=FLOAT8)
VOID = VoidType("void")

#: Keyword -> scalar/vector type.
TYPE_KEYWORDS = {
    t.name: t
    for t in (INT, FLOAT, FLOAT16, FLOAT16ALT, FLOAT8, FLOAT16V,
              FLOAT16ALTV, FLOAT8V, VOID)
}

#: Scalar FP type per format suffix.
FLOAT_BY_SUFFIX = {"s": FLOAT, "h": FLOAT16, "ah": FLOAT16ALT, "b": FLOAT8}

#: Vector type per element type.
VEC_OF = {FLOAT16: FLOAT16V, FLOAT16ALT: FLOAT16ALTV, FLOAT8: FLOAT8V}

# Promotion ranks.  float16 and float16alt share a rank: neither
# subsumes the other, so implicit mixing is rejected.
_RANK = {FLOAT8: 0, FLOAT16: 1, FLOAT16ALT: 1, FLOAT: 2}


def _register_format_types(fmt: NumberFormat) -> None:
    """Derive kernel-language types for a newly registered format.

    The IEEE formats above are statically defined (their singletons are
    compared by identity across the compiler); everything else --
    posit8, mx8, formats registered by tests -- gets a scalar type
    keyed by its C keyword, a promotion rank by width (same-width
    distinct formats are unordered, like float16 vs float16alt), and a
    vector type when the format supports packed SIMD.
    """
    if not fmt.kernel_type or fmt.c_keyword in TYPE_KEYWORDS:
        return
    ty = FloatType(fmt.c_keyword, fmt)
    TYPE_KEYWORDS[ty.name] = ty
    FLOAT_BY_SUFFIX[fmt.suffix] = ty
    _RANK[ty] = 0 if fmt.width <= 8 else (1 if fmt.width <= 16 else 2)
    if fmt.has_vector and fmt.width <= 16:
        vty = VecType(fmt.c_keyword + "v", elem=ty)
        TYPE_KEYWORDS[vty.name] = vty
        VEC_OF[ty] = vty


registry.on_register(_register_format_types)


def is_float(ty: Type) -> bool:
    return isinstance(ty, FloatType)


def is_vector(ty: Type) -> bool:
    return isinstance(ty, VecType)


def promote(a: Type, b: Type) -> Type:
    """The common type of a binary arithmetic operation.

    Implements the extended conversion rules:  int op int -> int;
    int op FP -> FP; FP op FP -> the higher-ranked format; equal-rank
    distinct formats (float16 vs float16alt) are an error.
    """
    if a == b:
        return a
    if isinstance(a, IntType) and isinstance(b, IntType):
        return INT
    if isinstance(a, IntType) and is_float(b):
        return b
    if is_float(a) and isinstance(b, IntType):
        return a
    if is_float(a) and is_float(b):
        ra, rb = _RANK[a], _RANK[b]
        if ra == rb:
            raise TypeError_(
                f"implicit mixing of {a} and {b} is ambiguous; "
                "use an explicit cast"
            )
        return a if ra > rb else b
    if is_vector(a) and is_vector(b) and a == b:
        return a
    raise TypeError_(f"no common type for {a} and {b}")


def can_convert(src: Type, dst: Type) -> bool:
    """May ``src`` convert (implicitly, on assignment) to ``dst``?

    Assignment conversion is permissive among scalars -- like C, any
    arithmetic type assigns to any other, with rounding on narrowing.
    Vectors only assign to the identical vector type; pointers must
    match exactly.
    """
    if src == dst:
        return True
    scalars = (IntType, FloatType)
    if isinstance(src, scalars) and isinstance(dst, scalars):
        return True
    return False
