"""Middle-end optimizations: constant folding.

Folding casts of literals matters beyond tidiness: ``(float16)0.5``
must become a float16 literal so (a) no conversion instruction is spent
on a compile-time constant and (b) the auto-vectorizer sees a broadcast
constant rather than an opaque cast.
"""

from __future__ import annotations

from typing import Optional

from .astnodes import (
    Assign,
    BinOp,
    Block,
    Call,
    Cast,
    Decl,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    Function,
    If,
    Index,
    IntLit,
    LaneRef,
    Module,
    Return,
    Stmt,
    UnOp,
    While,
)
from .typesys import FloatType, IntType


def _fold(expr: Expr) -> Expr:
    if isinstance(expr, BinOp):
        expr.left = _fold(expr.left)
        expr.right = _fold(expr.right)
        if (isinstance(expr.left, IntLit) and isinstance(expr.right, IntLit)
                and isinstance(expr.ty, IntType)):
            left, right = expr.left.value, expr.right.value
            value: Optional[int] = None
            if expr.op == "+":
                value = left + right
            elif expr.op == "-":
                value = left - right
            elif expr.op == "*":
                value = left * right
            elif expr.op == "/" and right != 0:
                value = int(left / right)
            elif expr.op == "%" and right != 0:
                value = left - int(left / right) * right
            if value is not None:
                lit = IntLit(value)
                lit.ty = expr.ty
                return lit
        return expr
    if isinstance(expr, UnOp):
        expr.operand = _fold(expr.operand)
        if expr.op == "-" and isinstance(expr.operand, IntLit):
            lit = IntLit(-expr.operand.value)
            lit.ty = expr.ty
            return lit
        if expr.op == "-" and isinstance(expr.operand, FloatLit):
            lit = FloatLit(-expr.operand.value)
            lit.ty = expr.ty
            return lit
        return expr
    if isinstance(expr, Cast):
        expr.operand = _fold(expr.operand)
        inner = expr.operand
        if isinstance(expr.ty, FloatType):
            if isinstance(inner, FloatLit):
                lit = FloatLit(inner.value)
                lit.ty = expr.ty  # re-typed; codegen quantizes the bits
                return lit
            if isinstance(inner, IntLit):
                lit = FloatLit(float(inner.value))
                lit.ty = expr.ty
                return lit
        if isinstance(expr.ty, IntType) and isinstance(inner, IntLit):
            return inner
        if isinstance(expr.ty, IntType) and isinstance(inner, FloatLit):
            lit = IntLit(int(inner.value))
            lit.ty = expr.ty
            return lit
        return expr
    if isinstance(expr, Index):
        expr.base = _fold(expr.base)
        expr.index = _fold(expr.index)
        return expr
    if isinstance(expr, LaneRef):
        expr.base = _fold(expr.base)
        return expr
    if isinstance(expr, Call):
        expr.args = [_fold(arg) for arg in expr.args]
        return expr
    return expr


def _fold_stmt(stmt: Stmt) -> None:
    if isinstance(stmt, Block):
        for inner in stmt.stmts:
            _fold_stmt(inner)
    elif isinstance(stmt, Decl):
        if stmt.init is not None:
            stmt.init = _fold(stmt.init)
    elif isinstance(stmt, Assign):
        stmt.target = _fold(stmt.target)
        stmt.value = _fold(stmt.value)
    elif isinstance(stmt, If):
        stmt.cond = _fold(stmt.cond)
        _fold_stmt(stmt.then)
        if stmt.otherwise is not None:
            _fold_stmt(stmt.otherwise)
    elif isinstance(stmt, While):
        stmt.cond = _fold(stmt.cond)
        _fold_stmt(stmt.body)
    elif isinstance(stmt, For):
        if stmt.init is not None:
            _fold_stmt(stmt.init)
        if stmt.cond is not None:
            stmt.cond = _fold(stmt.cond)
        if stmt.step is not None:
            _fold_stmt(stmt.step)
        _fold_stmt(stmt.body)
    elif isinstance(stmt, Return):
        if stmt.value is not None:
            stmt.value = _fold(stmt.value)
    elif isinstance(stmt, ExprStmt):
        stmt.expr = _fold(stmt.expr)


def fold_constants(module: Module) -> Module:
    """Fold literal arithmetic and literal casts across the module."""
    for fn in module.functions:
        _fold_stmt(fn.body)
    return module
