"""AST -> RISC-V assembly for the smallFloat-extended ISA.

The target is the paper's PULP RISCY configuration with the merged
integer/FP register file, so every value -- integer, scalar smallFloat
or packed vector -- lives in an x register.  Narrow FP scalars occupy
the low bits of their register (zero-extended), exactly as the SIMD lane
layout expects.

Register conventions:

* parameters stay in their incoming ``a0..a7`` registers (pinned);
* locals are allocated from ``s0..s11`` then free ``a``/``t`` registers,
  spilling to the stack beyond that;
* expression evaluation draws scratch registers from ``t0..t6``.

Kernels are compiled as leaf entry points called by the simulation
harness, so no callee-saved registers are preserved (documented in
DESIGN.md); the harness treats every register as clobbered.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .. import ReproError
from ..fp.convert import from_double
from .astnodes import (
    Assign,
    BinOp,
    Block,
    Call,
    Cast,
    Decl,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    Function,
    If,
    Index,
    IntLit,
    LaneRef,
    Return,
    Stmt,
    UnOp,
    Var,
    While,
)
from .intrinsics import INTRINSICS
from .typesys import (
    FLOAT,
    INT,
    VOID,
    FloatType,
    IntType,
    PtrType,
    Type,
    VecType,
    is_float,
    is_vector,
)

# Register numbers (ABI names in comments).
_ARG_REGS = list(range(10, 18))  # a0-a7
_LOCAL_POOL = [8, 9] + list(range(18, 28))  # s0-s11
_EXTRA_LOCAL_POOL = [28, 29]  # t3, t4 when s-regs run out
_SCRATCH_POOL = [5, 6, 7, 30, 31]  # t0-t2, t5, t6

_REG_NAMES = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
]


class CodegenError(ReproError):
    """Resource exhaustion or an unsupported construct."""


def _reg(num: int) -> str:
    return _REG_NAMES[num]


def _load_mnemonic(ty: Type) -> str:
    if isinstance(ty, (IntType, PtrType, VecType)):
        return "lw"
    if isinstance(ty, FloatType):
        return {4: "lw", 2: "lhu", 1: "lbu"}[ty.size]
    raise CodegenError(f"cannot load a {ty}")


def _store_mnemonic(ty: Type) -> str:
    if isinstance(ty, (IntType, PtrType, VecType)):
        return "sw"
    if isinstance(ty, FloatType):
        return {4: "sw", 2: "sh", 1: "sb"}[ty.size]
    raise CodegenError(f"cannot store a {ty}")


class _FunctionCodegen:
    def __init__(self, fn: Function):
        self.fn = fn
        self.lines: List[str] = []
        self.labels = 0
        self.var_reg: Dict[str, int] = {}
        self.var_stack: Dict[str, int] = {}
        self.frame_size = 0
        self._free_locals = list(_LOCAL_POOL) + list(_EXTRA_LOCAL_POOL)
        self._free_scratch = list(_SCRATCH_POOL)
        self._var_types: Dict[str, Type] = {}

    # ------------------------------------------------------------------
    # Infrastructure
    # ------------------------------------------------------------------
    def emit(self, text: str) -> None:
        self.lines.append(f"    {text}")

    def emit_label(self, label: str) -> None:
        self.lines.append(f"{label}:")

    def new_label(self, hint: str) -> str:
        self.labels += 1
        return f"L_{self.fn.name}_{hint}_{self.labels}"

    def take_scratch(self) -> int:
        if not self._free_scratch:
            raise CodegenError(
                f"{self.fn.name}: expression too deep (out of scratch "
                "registers)"
            )
        return self._free_scratch.pop(0)

    def release(self, reg: int, owned: bool) -> None:
        if owned:
            self._free_scratch.insert(0, reg)

    # ------------------------------------------------------------------
    # Variable locations
    # ------------------------------------------------------------------
    def declare_var(self, name: str, ty: Type) -> None:
        self._var_types[name] = ty
        if self._free_locals:
            self.var_reg[name] = self._free_locals.pop(0)
        else:
            self.var_stack[name] = self.frame_size
            self.frame_size += 4

    def var_type(self, name: str) -> Type:
        return self._var_types[name]

    def read_var(self, name: str) -> Tuple[int, bool]:
        """Register holding the variable's value (+ ownership flag)."""
        if name in self.var_reg:
            return self.var_reg[name], False
        reg = self.take_scratch()
        self.emit(f"lw {_reg(reg)}, {self.var_stack[name]}(sp)")
        return reg, True

    def write_var(self, name: str, src: int) -> None:
        if name in self.var_reg:
            if self.var_reg[name] != src:
                self.emit(f"mv {_reg(self.var_reg[name])}, {_reg(src)}")
        else:
            self.emit(f"sw {_reg(src)}, {self.var_stack[name]}(sp)")

    def var_home(self, name: str) -> Optional[int]:
        """The variable's pinned register, or None when stack-resident."""
        return self.var_reg.get(name)

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def generate(self) -> List[str]:
        fn = self.fn
        if len(fn.params) > len(_ARG_REGS):
            raise CodegenError(f"{fn.name}: more than 8 parameters")
        for index, param in enumerate(fn.params):
            self.var_reg[param.name] = _ARG_REGS[index]
            self._var_types[param.name] = param.ty
        # Argument registers beyond the parameter list join the scratch
        # pool (they are caller-saved and otherwise dead).
        self._free_scratch += _ARG_REGS[len(fn.params):]

        body_lines_start = len(self.lines)
        self.gen_block(fn.body)
        if not self.lines or not self.lines[-1].strip() == "ret":
            self.emit("ret")

        header = [f"{fn.name}:"]
        if self.frame_size:
            header.append(f"    addi sp, sp, -{self.frame_size}")
            # Patch every ret to restore sp first.
            patched: List[str] = []
            for line in self.lines[body_lines_start:]:
                if line.strip() == "ret":
                    patched.append(f"    addi sp, sp, {self.frame_size}")
                patched.append(line)
            self.lines[body_lines_start:] = patched
        return header + self.lines

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def gen_block(self, block: Block) -> None:
        for stmt in block.stmts:
            self.gen_stmt(stmt)

    def gen_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Block):
            self.gen_block(stmt)
        elif isinstance(stmt, Decl):
            self.declare_var(stmt.name, stmt.ty)
            if stmt.init is not None:
                home = self.var_home(stmt.name)
                if home is not None:
                    self.eval_into(home, stmt.init)
                else:
                    reg, owned = self.eval(stmt.init)
                    self.write_var(stmt.name, reg)
                    self.release(reg, owned)
        elif isinstance(stmt, Assign):
            self.gen_assign(stmt)
        elif isinstance(stmt, If):
            self.gen_if(stmt)
        elif isinstance(stmt, While):
            self.gen_while(stmt)
        elif isinstance(stmt, For):
            self.gen_for(stmt)
        elif isinstance(stmt, Return):
            if stmt.value is not None:
                self.eval_into(10, stmt.value)  # a0
            self.emit("ret")
        elif isinstance(stmt, ExprStmt):
            reg, owned = self.eval(stmt.expr)
            self.release(reg, owned)
        else:
            raise CodegenError(f"unhandled statement {type(stmt).__name__}")

    def gen_assign(self, stmt: Assign) -> None:
        target = stmt.target
        if isinstance(target, Var):
            home = self.var_home(target.name)
            if home is not None:
                self.eval_into(home, stmt.value)
            else:
                reg, owned = self.eval(stmt.value)
                self.write_var(target.name, reg)
                self.release(reg, owned)
            return
        if isinstance(target, Index):
            addr, addr_owned, offset = self.eval_address(target)
            value, value_owned = self.eval(stmt.value)
            store = _store_mnemonic(target.ty)
            self.emit(f"{store} {_reg(value)}, {offset}({_reg(addr)})")
            self.release(value, value_owned)
            self.release(addr, addr_owned)
            return
        if isinstance(target, LaneRef):
            self.gen_lane_store(target, stmt.value)
            return
        raise CodegenError(f"cannot assign to {type(target).__name__}")

    def gen_lane_store(self, target: LaneRef, value: Expr) -> None:
        """Insert a scalar into one lane of a vector variable."""
        if not isinstance(target.base, Var):
            raise CodegenError("lane stores need a vector variable")
        vec_ty: VecType = target.base.ty
        width = vec_ty.elem.fmt.width
        shift = target.lane * width
        value_reg, value_owned = self.eval(value)
        vec_reg, vec_owned = self.read_var(target.base.name)
        mask = ((1 << width) - 1) << shift
        tmp = self.take_scratch()
        self.emit(f"li {_reg(tmp)}, {(~mask) & 0xFFFFFFFF}")
        self.emit(f"and {_reg(vec_reg)}, {_reg(vec_reg)}, {_reg(tmp)}")
        if shift:
            self.emit(f"slli {_reg(tmp)}, {_reg(value_reg)}, {shift}")
            self.emit(f"or {_reg(vec_reg)}, {_reg(vec_reg)}, {_reg(tmp)}")
        else:
            self.emit(f"or {_reg(vec_reg)}, {_reg(vec_reg)}, {_reg(value_reg)}")
        self.release(tmp, True)
        self.write_var(target.base.name, vec_reg)
        self.release(vec_reg, vec_owned)
        self.release(value_reg, value_owned)

    def gen_if(self, stmt: If) -> None:
        else_label = self.new_label("else")
        end_label = self.new_label("endif")
        self.branch_if_false(stmt.cond,
                             else_label if stmt.otherwise else end_label)
        self.gen_block(stmt.then)
        if stmt.otherwise is not None:
            self.emit(f"j {end_label}")
            self.emit_label(else_label)
            self.gen_block(stmt.otherwise)
        self.emit_label(end_label)

    def gen_while(self, stmt: While) -> None:
        head = self.new_label("while")
        end = self.new_label("endwhile")
        self.emit_label(head)
        self.branch_if_false(stmt.cond, end)
        self.gen_block(stmt.body)
        self.emit(f"j {head}")
        self.emit_label(end)

    def gen_for(self, stmt: For) -> None:
        if stmt.init is not None:
            self.gen_stmt(stmt.init)
        head = self.new_label("for")
        end = self.new_label("endfor")
        self.emit_label(head)
        if stmt.cond is not None:
            self.branch_if_false(stmt.cond, end)
        self.gen_block(stmt.body)
        if stmt.step is not None:
            self.gen_stmt(stmt.step)
        self.emit(f"j {head}")
        self.emit_label(end)

    # ------------------------------------------------------------------
    # Conditions
    # ------------------------------------------------------------------
    _INT_INVERSE = {"<": "bge", "<=": "bgt", ">": "ble", ">=": "blt",
                    "==": "bne", "!=": "beq"}

    def branch_if_false(self, cond: Expr, label: str) -> None:
        if isinstance(cond, BinOp) and cond.op in self._INT_INVERSE:
            if isinstance(cond.left.ty, IntType):
                left, lo = self.eval(cond.left)
                right, ro = self.eval(cond.right)
                self.emit(
                    f"{self._INT_INVERSE[cond.op]} {_reg(left)}, "
                    f"{_reg(right)}, {label}"
                )
                self.release(right, ro)
                self.release(left, lo)
                return
        if isinstance(cond, UnOp) and cond.op == "!":
            reg, owned = self.eval(cond.operand)
            self.emit(f"bnez {_reg(reg)}, {label}")
            self.release(reg, owned)
            return
        reg, owned = self.eval(cond)
        self.emit(f"beqz {_reg(reg)}, {label}")
        self.release(reg, owned)

    # ------------------------------------------------------------------
    # Addresses
    # ------------------------------------------------------------------
    def eval_address(self, expr: Index) -> Tuple[int, bool, int]:
        """Compute the address of an array element.

        Returns ``(base_register, owned, constant_offset)``.

        The stride comes from the *pointer's* element type: a
        vector-typed access produced by the auto-vectorizer still
        indexes in scalar elements (``float16v`` loads advance by 2-byte
        lanes times the lane index).
        """
        elem_size = expr.base.ty.elem.size
        base, base_owned = self.eval(expr.base)
        if isinstance(expr.index, IntLit):
            offset = expr.index.value * elem_size
            if -2048 <= offset <= 2047:
                return base, base_owned, offset
        index, index_owned = self.eval(expr.index)
        out = index if index_owned else self.take_scratch()
        shift = {1: 0, 2: 1, 4: 2}[elem_size]
        if shift:
            self.emit(f"slli {_reg(out)}, {_reg(index)}, {shift}")
            self.emit(f"add {_reg(out)}, {_reg(base)}, {_reg(out)}")
        else:
            self.emit(f"add {_reg(out)}, {_reg(base)}, {_reg(index)}")
        if not index_owned:
            pass  # out is a fresh scratch we own
        self.release(base, base_owned)
        return out, True, 0

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def eval(self, expr: Expr) -> Tuple[int, bool]:
        """Evaluate into some register; returns (register, owned)."""
        if isinstance(expr, Var):
            return self.read_var(expr.name)
        if isinstance(expr, LaneRef) and expr.lane == 0:
            # Lane 0 is the low bits; scalar consumers read it in place.
            return self.eval(expr.base)
        reg = self.take_scratch()
        self._eval_to(reg, expr, rd_safe=True)
        return reg, True

    def eval_into(self, target: int, expr: Expr) -> None:
        """Evaluate directly into a specific register."""
        if isinstance(expr, Var):
            src, owned = self.read_var(expr.name)
            if src != target:
                self.emit(f"mv {_reg(target)}, {_reg(src)}")
            self.release(src, owned)
            return
        self._eval_to(target, expr)

    def _eval_to(self, rd: int, expr: Expr, rd_safe: bool = False) -> None:
        """Emit code leaving ``expr``'s value in ``rd``.

        ``rd_safe`` marks ``rd`` as a register no other live value can
        alias (a fresh scratch), letting binary operators evaluate their
        left operand straight into it -- this keeps long left-leaning
        expression chains at O(1) register pressure (Sethi-Ullman).
        """
        if isinstance(expr, IntLit):
            self.emit(f"li {_reg(rd)}, {expr.value}")
            return
        if isinstance(expr, FloatLit):
            if isinstance(expr.ty, VecType):
                lane = from_double(expr.value, expr.ty.elem.fmt)
                width = expr.ty.elem.fmt.width
                bits = 0
                for lane_index in range(expr.ty.lanes):
                    bits |= lane << (lane_index * width)
                self.emit(f"li {_reg(rd)}, {bits}  # splat {expr.value}")
            else:
                bits = from_double(expr.value, expr.ty.fmt)
                self.emit(f"li {_reg(rd)}, {bits}  # {expr.value}")
            return
        if isinstance(expr, Index):
            addr, owned, offset = self.eval_address(expr)
            self.emit(
                f"{_load_mnemonic(expr.ty)} {_reg(rd)}, {offset}({_reg(addr)})"
            )
            self.release(addr, owned)
            return
        if isinstance(expr, LaneRef):
            # Scalar FP instructions read only the low-order format bits
            # of a register, so extracting lane k is a bare shift (the
            # exact srli + scalar-op pattern of paper Fig. 5).
            base, owned = self.eval(expr.base)
            width = expr.base.ty.elem.fmt.width
            shift = expr.lane * width
            if shift:
                self.emit(f"srli {_reg(rd)}, {_reg(base)}, {shift}")
            elif base != rd:
                self.emit(f"mv {_reg(rd)}, {_reg(base)}")
            self.release(base, owned)
            return
        if isinstance(expr, UnOp):
            self._eval_unop(rd, expr)
            return
        if isinstance(expr, BinOp):
            self._eval_binop(rd, expr, rd_safe)
            return
        if isinstance(expr, Cast):
            self._eval_cast(rd, expr)
            return
        if isinstance(expr, Call):
            self._eval_call(rd, expr)
            return
        raise CodegenError(f"unhandled expression {type(expr).__name__}")

    def _eval_unop(self, rd: int, expr: UnOp) -> None:
        src, owned = self.eval(expr.operand)
        ty = expr.ty
        if expr.op == "-":
            if isinstance(ty, IntType):
                self.emit(f"neg {_reg(rd)}, {_reg(src)}")
            elif is_vector(ty):
                self.emit(f"vfsgnjn.{ty.suffix} {_reg(rd)}, {_reg(src)}, "
                          f"{_reg(src)}")
            else:
                self.emit(f"fsgnjn.{ty.suffix} {_reg(rd)}, {_reg(src)}, "
                          f"{_reg(src)}")
        elif expr.op == "!":
            self.emit(f"seqz {_reg(rd)}, {_reg(src)}")
        else:
            raise CodegenError(f"unhandled unary {expr.op!r}")
        self.release(src, owned)

    _INT_BIN = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem"}
    _FP_BIN = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}
    _VEC_BIN = {"+": "vfadd", "-": "vfsub", "*": "vfmul", "/": "vfdiv"}

    def _left_operand(self, rd: int, expr: BinOp,
                      rd_safe: bool) -> Tuple[int, bool]:
        """Evaluate the left operand, reusing ``rd`` when safe."""
        if rd_safe and not isinstance(expr.left, Var):
            self._eval_to(rd, expr.left, rd_safe=True)
            return rd, False
        return self.eval(expr.left)

    def _eval_binop(self, rd: int, expr: BinOp, rd_safe: bool = False) -> None:
        op, ty = expr.op, expr.ty
        if op in ("&&", "||"):
            left, lo = self.eval(expr.left)
            right, ro = self.eval(expr.right)
            self.emit(f"snez {_reg(rd)}, {_reg(left)}")
            tmp = self.take_scratch()
            self.emit(f"snez {_reg(tmp)}, {_reg(right)}")
            mnemonic = "and" if op == "&&" else "or"
            self.emit(f"{mnemonic} {_reg(rd)}, {_reg(rd)}, {_reg(tmp)}")
            self.release(tmp, True)
            self.release(right, ro)
            self.release(left, lo)
            return
        # Pointer arithmetic: offset scales by the element size.
        if isinstance(ty, PtrType):
            size = ty.elem.size
            if isinstance(expr.right, IntLit):
                imm = expr.right.value * size * (1 if op == "+" else -1)
                if -2048 <= imm <= 2047:
                    left, lo = self._left_operand(rd, expr, rd_safe)
                    self.emit(f"addi {_reg(rd)}, {_reg(left)}, {imm}")
                    self.release(left, lo)
                    return
            left, lo = self._left_operand(rd, expr, rd_safe)
            right, ro = self.eval(expr.right)
            shift = {1: 0, 2: 1, 4: 2}[size]
            mnemonic = "add" if op == "+" else "sub"
            if shift == 0:
                self.emit(f"{mnemonic} {_reg(rd)}, {_reg(left)}, {_reg(right)}")
            else:
                offset = right if ro else self.take_scratch()
                self.emit(f"slli {_reg(offset)}, {_reg(right)}, {shift}")
                self.emit(f"{mnemonic} {_reg(rd)}, {_reg(left)}, "
                          f"{_reg(offset)}")
                if not ro:
                    self.release(offset, True)
            self.release(right, ro)
            self.release(left, lo)
            return

        # Peephole: integer add/sub of a small literal becomes addi.
        if (isinstance(ty, IntType) and op in ("+", "-")
                and isinstance(expr.right, IntLit)):
            imm = expr.right.value if op == "+" else -expr.right.value
            if -2048 <= imm <= 2047:
                left, lo = self._left_operand(rd, expr, rd_safe)
                self.emit(f"addi {_reg(rd)}, {_reg(left)}, {imm}")
                self.release(left, lo)
                return
        left, lo = self._left_operand(rd, expr, rd_safe)
        right, ro = self.eval(expr.right)
        operand_ty = expr.left.ty
        if op in ("==", "!=", "<", "<=", ">", ">="):
            self._eval_compare(rd, op, operand_ty, left, right)
        elif isinstance(ty, IntType):
            self.emit(f"{self._INT_BIN[op]} {_reg(rd)}, {_reg(left)}, "
                      f"{_reg(right)}")
        elif is_vector(ty):
            variant = ".r" if getattr(expr, "repl", False) else ""
            self.emit(f"{self._VEC_BIN[op]}{variant}.{ty.suffix} {_reg(rd)}, "
                      f"{_reg(left)}, {_reg(right)}")
        elif is_float(ty):
            self.emit(f"{self._FP_BIN[op]}.{ty.suffix} {_reg(rd)}, "
                      f"{_reg(left)}, {_reg(right)}")
        else:
            raise CodegenError(f"cannot apply {op!r} to {ty}")
        self.release(right, ro)
        self.release(left, lo)

    def _eval_compare(self, rd: int, op: str, ty: Type, left: int,
                      right: int) -> None:
        if isinstance(ty, IntType):
            l, r = _reg(left), _reg(right)
            if op == "<":
                self.emit(f"slt {_reg(rd)}, {l}, {r}")
            elif op == ">":
                self.emit(f"slt {_reg(rd)}, {r}, {l}")
            elif op == "<=":
                self.emit(f"slt {_reg(rd)}, {r}, {l}")
                self.emit(f"xori {_reg(rd)}, {_reg(rd)}, 1")
            elif op == ">=":
                self.emit(f"slt {_reg(rd)}, {l}, {r}")
                self.emit(f"xori {_reg(rd)}, {_reg(rd)}, 1")
            elif op == "==":
                self.emit(f"xor {_reg(rd)}, {l}, {r}")
                self.emit(f"seqz {_reg(rd)}, {_reg(rd)}")
            elif op == "!=":
                self.emit(f"xor {_reg(rd)}, {l}, {r}")
                self.emit(f"snez {_reg(rd)}, {_reg(rd)}")
            return
        if is_float(ty):
            suffix = ty.suffix
            l, r = _reg(left), _reg(right)
            if op == "==":
                self.emit(f"feq.{suffix} {_reg(rd)}, {l}, {r}")
            elif op == "!=":
                self.emit(f"feq.{suffix} {_reg(rd)}, {l}, {r}")
                self.emit(f"xori {_reg(rd)}, {_reg(rd)}, 1")
            elif op == "<":
                self.emit(f"flt.{suffix} {_reg(rd)}, {l}, {r}")
            elif op == "<=":
                self.emit(f"fle.{suffix} {_reg(rd)}, {l}, {r}")
            elif op == ">":
                self.emit(f"flt.{suffix} {_reg(rd)}, {r}, {l}")
            elif op == ">=":
                self.emit(f"fle.{suffix} {_reg(rd)}, {r}, {l}")
            return
        raise CodegenError(f"cannot compare {ty}")

    def _eval_cast(self, rd: int, expr: Cast) -> None:
        src_ty = expr.operand.ty
        dst_ty = expr.target
        src, owned = self.eval(expr.operand)
        if src_ty == dst_ty or (isinstance(src_ty, IntType)
                                and isinstance(dst_ty, IntType)) or (
                isinstance(src_ty, PtrType) and isinstance(dst_ty, PtrType)):
            # Same representation (pointer reinterprets are free).
            if src != rd:
                self.emit(f"mv {_reg(rd)}, {_reg(src)}")
        elif isinstance(src_ty, IntType) and is_float(dst_ty):
            self.emit(f"fcvt.{dst_ty.suffix}.w {_reg(rd)}, {_reg(src)}")
        elif is_float(src_ty) and isinstance(dst_ty, IntType):
            # C semantics: truncation toward zero.
            self.emit(f"fcvt.w.{src_ty.suffix} {_reg(rd)}, {_reg(src)}, rtz")
        elif is_float(src_ty) and is_float(dst_ty):
            self.emit(f"fcvt.{dst_ty.suffix}.{src_ty.suffix} {_reg(rd)}, "
                      f"{_reg(src)}")
        else:
            raise CodegenError(f"unhandled cast {src_ty} -> {dst_ty}")
        self.release(src, owned)

    def _eval_call(self, rd: int, expr: Call) -> None:
        intr = INTRINSICS[expr.name]
        if intr.style in ("dotp", "macex", "cpk2"):
            # rd is also a source: seed it with the first argument.
            self.eval_into(rd, expr.args[0])
            regs: List[Tuple[int, bool]] = []
            for arg in expr.args[1:]:
                regs.append(self.eval(arg))
            operands = ", ".join(_reg(r) for r, _ in regs)
            self.emit(f"{intr.mnemonic} {_reg(rd)}, {operands}")
            for r, owned in reversed(regs):
                self.release(r, owned)
            return
        regs = [self.eval(arg) for arg in expr.args]
        operands = ", ".join(_reg(r) for r, _ in regs)
        self.emit(f"{intr.mnemonic} {_reg(rd)}, {operands}")
        for r, owned in reversed(regs):
            self.release(r, owned)


def generate(fn: Function) -> str:
    """Generate assembly text for one function."""
    return "\n".join(_FunctionCodegen(fn).generate())
