"""Abstract syntax tree of the kernel language.

Expression nodes carry a ``ty`` attribute filled by the semantic pass;
the vectorizer and code generator rely on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .typesys import Type


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
@dataclass
class Expr:
    ty: Optional[Type] = field(default=None, init=False, repr=False)


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class Var(Expr):
    name: str = ""


@dataclass
class Index(Expr):
    """Array element access ``base[index]`` (base is a pointer)."""

    base: Expr = None
    index: Expr = None


@dataclass
class LaneRef(Expr):
    """Vector lane access ``v[lane]`` on a vector-typed variable."""

    base: Expr = None
    lane: int = 0


@dataclass
class BinOp(Expr):
    op: str = ""
    left: Expr = None
    right: Expr = None
    #: Set by the vectorizer: the right operand is a scalar broadcast
    #: into every lane (codegen emits the ``.r`` replicating variant).
    repl: bool = False


@dataclass
class UnOp(Expr):
    op: str = ""
    operand: Expr = None


@dataclass
class Cast(Expr):
    target: Type = None
    operand: Expr = None
    #: Inserted by the semantic pass (vs. written by the programmer).
    implicit: bool = False


@dataclass
class Call(Expr):
    """An intrinsic call (the language has no user-defined calls)."""

    name: str = ""
    args: List[Expr] = field(default_factory=list)


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
@dataclass
class Stmt:
    pass


@dataclass
class Block(Stmt):
    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class Decl(Stmt):
    name: str = ""
    ty: Type = None
    init: Optional[Expr] = None


@dataclass
class Assign(Stmt):
    """``target = value`` (compound ops are desugared by the parser)."""

    target: Expr = None  # Var, Index or LaneRef
    value: Expr = None


@dataclass
class If(Stmt):
    cond: Expr = None
    then: Block = None
    otherwise: Optional[Block] = None


@dataclass
class For(Stmt):
    """C-style ``for (init; cond; step) body``.

    ``init`` and ``step`` are single statements (or None); the
    vectorizer pattern-matches canonical counted loops here.
    """

    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Stmt] = None
    body: Block = None


@dataclass
class While(Stmt):
    cond: Expr = None
    body: Block = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None


# ----------------------------------------------------------------------
# Top level
# ----------------------------------------------------------------------
@dataclass
class Param:
    name: str
    ty: Type


@dataclass
class Function:
    name: str
    params: List[Param]
    return_type: Type
    body: Block


@dataclass
class Module:
    functions: List[Function]

    def function(self, name: str) -> Function:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(f"no function {name!r}")
