"""The auto-vectorization pass (Section IV of the paper).

Transforms eligible innermost counted loops over smallFloat arrays into
packed-SIMD loops plus a scalar epilogue.  The pass deliberately mirrors
the code-generation strategy of the paper's extended GCC auto-vectorizer,
*including its documented inefficiencies*:

* reductions are implemented by unpacking vector lanes with shifts and
  scalar conversions (the ``vfmul.h / srli / fcvt.s.h / fadd.s`` pattern
  on the left of paper Fig. 5) rather than the Xfaux expanding dot
  product a human would write;
* the scalar epilogue loop always remains, which is what "creates
  significant additional overhead to handle the prologue/epilogue loops"
  for triangular nested loops (Section V-B).

Eligibility for one innermost ``for (v = init; v < limit; v = v + 1)``:

* the body is straight-line assignments (no control flow);
* every array access is stride-1 in the induction variable and every
  vectorized operand shares one smallFloat element type;
* loop-invariant scalars and literals may appear as broadcast operands
  (codegen uses the ``.r`` replicating instruction variants);
* reductions accumulate a vectorizable product chain into a scalar.

Arrays are assumed non-aliasing (C ``restrict`` semantics), as in the
paper's benchmark builds.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple, Union

from .astnodes import (
    Assign,
    BinOp,
    Block,
    Call,
    Cast,
    Decl,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    Function,
    If,
    Index,
    IntLit,
    LaneRef,
    Module,
    Return,
    Stmt,
    UnOp,
    Var,
    While,
)
from .typesys import (
    FLOAT,
    INT,
    FloatType,
    IntType,
    PtrType,
    Type,
    VEC_OF,
    VecType,
    is_float,
)

def _vectorizable(name: str) -> bool:
    """A scalar type is vectorizable iff it has a derived vector type
    (sub-32-bit lanes and a format with packed-SIMD instruction forms)."""
    from .typesys import TYPE_KEYWORDS

    ty = TYPE_KEYWORDS.get(name)
    return isinstance(ty, FloatType) and ty in VEC_OF


def _dotp_intrinsic(vec_ty: VecType):
    """The expanding dot-product intrinsic taking two ``vec_ty`` vectors
    into a binary32 accumulator, or None if the format has no such op."""
    from .intrinsics import INTRINSICS

    for intr in INTRINSICS.values():
        if (intr.style == "dotp" and len(intr.params) == 3
                and intr.params[0] == FLOAT
                and intr.params[1] == vec_ty and intr.params[2] == vec_ty):
            return intr
    return None


@dataclass
class VectorizeReport:
    """What the pass did, for diagnostics and tests."""

    vectorized_loops: int = 0
    rejected_loops: int = 0


# ----------------------------------------------------------------------
# Analysis helpers
# ----------------------------------------------------------------------
def _vars_in(expr: Expr, out: Set[str]) -> None:
    if isinstance(expr, Var):
        out.add(expr.name)
    elif isinstance(expr, Index):
        _vars_in(expr.base, out)
        _vars_in(expr.index, out)
    elif isinstance(expr, LaneRef):
        _vars_in(expr.base, out)
    elif isinstance(expr, BinOp):
        _vars_in(expr.left, out)
        _vars_in(expr.right, out)
    elif isinstance(expr, UnOp):
        _vars_in(expr.operand, out)
    elif isinstance(expr, Cast):
        _vars_in(expr.operand, out)
    elif isinstance(expr, Call):
        for arg in expr.args:
            _vars_in(arg, out)


def _assigned_names(body: Block) -> Set[str]:
    names: Set[str] = set()
    for stmt in body.stmts:
        if isinstance(stmt, Assign) and isinstance(stmt.target, Var):
            names.add(stmt.target.name)
        if isinstance(stmt, Decl):
            names.add(stmt.name)
    return names


def _is_invariant(expr: Expr, loop_var: str, mutated: Set[str]) -> bool:
    """Loop-invariant: no induction var, no mutated vars, no loads."""
    if isinstance(expr, (IntLit, FloatLit)):
        return True
    if isinstance(expr, Var):
        return expr.name != loop_var and expr.name not in mutated
    if isinstance(expr, BinOp):
        return (_is_invariant(expr.left, loop_var, mutated)
                and _is_invariant(expr.right, loop_var, mutated))
    if isinstance(expr, UnOp):
        return _is_invariant(expr.operand, loop_var, mutated)
    if isinstance(expr, Cast):
        return _is_invariant(expr.operand, loop_var, mutated)
    return False


def _stride(index: Expr, loop_var: str, mutated: Set[str]) -> Optional[int]:
    """Coefficient of the induction variable in a linear index, or None."""
    if isinstance(index, Var) and index.name == loop_var:
        return 1
    if _is_invariant(index, loop_var, mutated):
        return 0
    if isinstance(index, BinOp) and index.op == "+":
        left = _stride(index.left, loop_var, mutated)
        right = _stride(index.right, loop_var, mutated)
        if left is None or right is None:
            return None
        return left + right
    if isinstance(index, BinOp) and index.op == "-":
        left = _stride(index.left, loop_var, mutated)
        right = _stride(index.right, loop_var, mutated)
        if left is None or right != 0:
            return None
        return left
    return None


# ----------------------------------------------------------------------
# The pass
# ----------------------------------------------------------------------
class _Rejected(Exception):
    """Internal: this loop cannot be vectorized."""


class Vectorizer:
    def __init__(self, expanding: bool = False):
        self.report = VectorizeReport()
        self.expanding = expanding
        self._tmp_counter = 0

    # ------------------------------------------------------------------
    def run(self, module: Module) -> VectorizeReport:
        for fn in module.functions:
            self._block(fn.body)
        return self.report

    def _block(self, block: Block) -> None:
        out: List[Stmt] = []
        for stmt in block.stmts:
            out.extend(self._stmt(stmt))
        block.stmts = out

    def _stmt(self, stmt: Stmt) -> List[Stmt]:
        if isinstance(stmt, Block):
            self._block(stmt)
            return [stmt]
        if isinstance(stmt, If):
            self._block(stmt.then)
            if stmt.otherwise is not None:
                self._block(stmt.otherwise)
            return [stmt]
        if isinstance(stmt, While):
            self._block(stmt.body)
            return [stmt]
        if isinstance(stmt, For):
            if self._is_innermost(stmt):
                replacement = self._try_vectorize(stmt)
                if replacement is not None:
                    self.report.vectorized_loops += 1
                    return replacement
                self.report.rejected_loops += 1
                return [stmt]
            self._block(stmt.body)
            return [stmt]
        return [stmt]

    @staticmethod
    def _is_innermost(loop: For) -> bool:
        return not any(isinstance(s, (For, While, If, Block))
                       for s in loop.body.stmts)

    # ------------------------------------------------------------------
    def _try_vectorize(self, loop: For) -> Optional[List[Stmt]]:
        try:
            return self._vectorize(loop)
        except _Rejected:
            return None

    def _vectorize(self, loop: For) -> List[Stmt]:
        loop_var, init_expr = self._canonical_induction(loop)
        if loop.cond is None or not (
            isinstance(loop.cond, BinOp) and loop.cond.op == "<"
            and isinstance(loop.cond.left, Var)
            and loop.cond.left.name == loop_var
        ):
            raise _Rejected
        limit = loop.cond.right
        mutated = _assigned_names(loop.body) | {loop_var}
        if not _is_invariant(limit, loop_var, mutated - {loop_var}):
            raise _Rejected

        mutated_wo_loopvar = mutated - {loop_var}

        # Determine the element type and build the vector body.
        elem_ty = self._find_element_type(loop.body, loop_var,
                                          mutated_wo_loopvar)
        vec_ty = VEC_OF[elem_ty]
        vf = vec_ty.lanes

        vec_body: List[Stmt] = []
        for stmt in loop.body.stmts:
            vec_body.extend(
                self._vectorize_stmt(stmt, loop_var, mutated_wo_loopvar,
                                     elem_ty, vec_ty)
            )

        # Assemble: hoisted induction + limit, vector loop, epilogue.
        out: List[Stmt] = []
        induction_decl = Decl(loop_var, INT, init_expr)
        out.append(induction_decl)

        vlimit_name = self._fresh("vlimit")
        vlimit_expr = BinOp("-", copy.deepcopy(limit), _int_lit(vf - 1))
        vlimit_expr.ty = INT
        vlimit_expr.left.ty = INT
        out.append(Decl(vlimit_name, INT, vlimit_expr))

        vec_cond = _cmp_lt(_var(loop_var, INT), _var(vlimit_name, INT))
        vec_step = _increment(loop_var, vf)
        out.append(For(None, vec_cond, vec_step, Block(vec_body)))

        epi_cond = _cmp_lt(_var(loop_var, INT), copy.deepcopy(limit))
        epi_step = _increment(loop_var, 1)
        out.append(For(None, epi_cond, epi_step,
                       Block(copy.deepcopy(loop.body.stmts))))
        return out

    def _canonical_induction(self, loop: For) -> Tuple[str, Expr]:
        """Extract (var, init) from ``for (v = e; ...; v = v + 1)``."""
        init = loop.init
        if isinstance(init, Decl) and isinstance(init.ty, IntType):
            name, init_expr = init.name, init.init or _int_lit(0)
        elif (isinstance(init, Assign) and isinstance(init.target, Var)
              and isinstance(init.target.ty, IntType)):
            name, init_expr = init.target.name, init.value
        else:
            raise _Rejected
        step = loop.step
        if not (
            isinstance(step, Assign) and isinstance(step.target, Var)
            and step.target.name == name
            and isinstance(step.value, BinOp) and step.value.op == "+"
            and isinstance(step.value.left, Var)
            and step.value.left.name == name
            and isinstance(step.value.right, IntLit)
            and step.value.right.value == 1
        ):
            raise _Rejected
        return name, init_expr

    # ------------------------------------------------------------------
    def _find_element_type(self, body: Block, loop_var: str,
                           mutated: Set[str]) -> FloatType:
        """All stride-1 accesses must share one smallFloat type."""
        found: Set[str] = set()

        def walk(expr: Expr) -> None:
            if isinstance(expr, Index):
                if isinstance(expr.ty, FloatType):
                    found.add(expr.ty.name)
                walk(expr.index)
            elif isinstance(expr, BinOp):
                walk(expr.left)
                walk(expr.right)
            elif isinstance(expr, (UnOp, Cast)):
                walk(expr.operand if isinstance(expr, UnOp) else expr.operand)
            elif isinstance(expr, Call):
                raise _Rejected  # intrinsics mean manual code; leave it

        for stmt in body.stmts:
            if isinstance(stmt, Assign):
                walk(stmt.target)
                walk(stmt.value)
            elif isinstance(stmt, Decl) and stmt.init is not None:
                walk(stmt.init)
            else:
                raise _Rejected
        if len(found) != 1:
            raise _Rejected
        name = found.pop()
        if not _vectorizable(name):
            raise _Rejected
        from .typesys import TYPE_KEYWORDS

        return TYPE_KEYWORDS[name]

    # ------------------------------------------------------------------
    def _vectorize_stmt(self, stmt: Stmt, loop_var: str, mutated: Set[str],
                        elem_ty: FloatType, vec_ty: VecType) -> List[Stmt]:
        if isinstance(stmt, Assign) and isinstance(stmt.target, Index):
            target = self._vec_index(stmt.target, loop_var, mutated, elem_ty,
                                     vec_ty)
            kind, value = self._vec_expr(stmt.value, loop_var, mutated,
                                         elem_ty, vec_ty)
            if kind != "vec":
                # A constant store broadcasts for free: the packed
                # literal is materialized with a single li.
                if isinstance(value, FloatLit):
                    value.ty = vec_ty
                    kind = "vec"
                else:
                    raise _Rejected
            return [Assign(target, value)]
        if (isinstance(stmt, Assign) and isinstance(stmt.target, Var)
                and stmt.target.name not in (loop_var,)):
            return self._vectorize_reduction(stmt, loop_var, mutated, elem_ty,
                                             vec_ty)
        raise _Rejected

    def _vectorize_reduction(self, stmt: Assign, loop_var: str,
                             mutated: Set[str], elem_ty: FloatType,
                             vec_ty: VecType) -> List[Stmt]:
        """``acc = acc + <vectorizable>`` -> multiply-then-unpack lanes.

        This is the auto-vectorizer's documented inefficiency: each lane
        is extracted (``srli``), converted (``fcvt.s.h``) and accumulated
        with a scalar add, instead of one ``vfdotpex``.
        """
        acc = stmt.target
        value = stmt.value
        if not (isinstance(value, BinOp) and value.op == "+"):
            raise _Rejected
        if not (isinstance(value.left, Var) and value.left.name == acc.name):
            raise _Rejected
        acc_ty = acc.ty
        if not is_float(acc_ty):
            raise _Rejected
        contribution = value.right
        # The accumulated term may carry an implicit widening cast
        # (float16 product assigned to a float accumulator).
        if isinstance(contribution, Cast) and contribution.implicit:
            contribution = contribution.operand
        expanded = self._try_expanding_dotp(acc, contribution, loop_var,
                                            mutated, elem_ty, vec_ty)
        if expanded is not None:
            return expanded
        kind, vec_value = self._vec_expr(contribution, loop_var, mutated,
                                         elem_ty, vec_ty)
        if kind != "vec":
            raise _Rejected

        tmp_name = self._fresh("vred")
        stmts: List[Stmt] = [Decl(tmp_name, vec_ty, vec_value)]
        for lane in range(vec_ty.lanes):
            lane_ref = LaneRef(_var(tmp_name, vec_ty), lane)
            lane_ref.ty = elem_ty
            term: Expr = lane_ref
            if acc_ty != elem_ty:
                term = Cast(acc_ty, lane_ref, implicit=True)
                term.ty = acc_ty
            add = BinOp("+", _var(acc.name, acc_ty), term)
            add.ty = acc_ty
            stmts.append(Assign(_var(acc.name, acc_ty), add))
        return stmts

    def _try_expanding_dotp(self, acc, contribution, loop_var: str,
                            mutated: Set[str], elem_ty: FloatType,
                            vec_ty: VecType) -> Optional[List[Stmt]]:
        """``acc += a[i] * b[i]`` with a binary32 accumulator -> one
        ``vfdotpex.s.*`` per vector step (the Xfaux form a human would
        write), when the pass runs with ``expanding_reductions``.

        Only engaged opt-in: the default pass keeps the paper's
        documented multiply-then-unpack inefficiency, which Fig. 5 and
        the committed baselines measure.
        """
        if not self.expanding or acc.ty != FLOAT:
            return None
        if not (isinstance(contribution, BinOp) and contribution.op == "*"):
            return None
        intr = _dotp_intrinsic(vec_ty)
        if intr is None:
            return None
        try:
            lkind, left = self._vec_expr(contribution.left, loop_var,
                                         mutated, elem_ty, vec_ty)
            rkind, right = self._vec_expr(contribution.right, loop_var,
                                          mutated, elem_ty, vec_ty)
        except _Rejected:
            return None
        if lkind != "vec" or rkind != "vec":
            return None  # broadcast operands have no dotp form
        call = Call(intr.name, [_var(acc.name, FLOAT), left, right])
        call.ty = FLOAT
        return [Assign(_var(acc.name, FLOAT), call)]

    # ------------------------------------------------------------------
    def _vec_index(self, expr: Index, loop_var: str, mutated: Set[str],
                   elem_ty: FloatType, vec_ty: VecType) -> Index:
        if expr.ty != elem_ty:
            raise _Rejected
        if _stride(expr.index, loop_var, mutated) != 1:
            raise _Rejected
        clone = copy.deepcopy(expr)
        clone.ty = vec_ty
        return clone

    def _vec_expr(self, expr: Expr, loop_var: str, mutated: Set[str],
                  elem_ty: FloatType, vec_ty: VecType
                  ) -> Tuple[str, Expr]:
        """Returns ('vec', node) or ('scalar', node).

        Scalar results are loop-invariant values of the element type,
        legal only as broadcast (``.r``) operands.
        """
        if isinstance(expr, Index):
            return "vec", self._vec_index(expr, loop_var, mutated, elem_ty,
                                          vec_ty)
        if isinstance(expr, (Var, FloatLit)):
            if expr.ty != elem_ty:
                raise _Rejected
            if not _is_invariant(expr, loop_var, mutated):
                raise _Rejected
            return "scalar", copy.deepcopy(expr)
        if isinstance(expr, Cast):
            # Only implicit no-op casts survive constant folding here.
            raise _Rejected
        if isinstance(expr, UnOp) and expr.op == "-":
            kind, operand = self._vec_expr(expr.operand, loop_var, mutated,
                                           elem_ty, vec_ty)
            node = UnOp("-", operand)
            node.ty = vec_ty if kind == "vec" else elem_ty
            return kind, node
        if isinstance(expr, BinOp) and expr.op in ("+", "-", "*", "/"):
            lkind, left = self._vec_expr(expr.left, loop_var, mutated,
                                         elem_ty, vec_ty)
            rkind, right = self._vec_expr(expr.right, loop_var, mutated,
                                          elem_ty, vec_ty)
            if lkind == rkind == "scalar":
                node = BinOp(expr.op, left, right)
                node.ty = elem_ty
                return "scalar", node
            if lkind == "scalar":
                if expr.op in ("+", "*"):
                    left, right = right, left  # commute: scalar to rs2
                    lkind, rkind = rkind, lkind
                else:
                    raise _Rejected  # scalar - vec / scalar / vec: no .r form
            node = BinOp(expr.op, left, right, repl=(rkind == "scalar"))
            node.ty = vec_ty
            return "vec", node
        raise _Rejected

    def _fresh(self, hint: str) -> str:
        self._tmp_counter += 1
        return f"__{hint}_{self._tmp_counter}"


# ----------------------------------------------------------------------
# Small typed-node constructors
# ----------------------------------------------------------------------
def _int_lit(value: int) -> IntLit:
    node = IntLit(value)
    node.ty = INT
    return node


def _var(name: str, ty: Type) -> Var:
    node = Var(name)
    node.ty = ty
    return node


def _cmp_lt(left: Expr, right: Expr) -> BinOp:
    node = BinOp("<", left, right)
    node.ty = INT
    return node


def _increment(name: str, amount: int) -> Assign:
    add = BinOp("+", _var(name, INT), _int_lit(amount))
    add.ty = INT
    return Assign(_var(name, INT), add)


def vectorize(module: Module, expanding: bool = False) -> VectorizeReport:
    """Run the auto-vectorizer over a type-checked module.

    ``expanding`` additionally rewrites binary32-accumulator reductions
    over smallFloat products into the Xfaux expanding dot product
    (``vfdotpex.s.*``) instead of the multiply-then-unpack pattern.
    """
    return Vectorizer(expanding=expanding).run(module)
