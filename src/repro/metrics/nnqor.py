"""NN-workload QoR metrics: worst-case error and loss-trajectory drift."""

from __future__ import annotations

import numpy as np


def max_abs_err(reference, approximation) -> float:
    """Largest absolute element-wise deviation from the reference."""
    ref = np.asarray(reference, dtype=np.float64).ravel()
    approx = np.asarray(approximation, dtype=np.float64).ravel()
    if ref.shape != approx.shape:
        raise ValueError(f"shape mismatch: {ref.shape} vs {approx.shape}")
    if ref.size == 0:
        raise ValueError("empty arrays")
    return float(np.max(np.abs(ref - approx)))


def loss_divergence(reference_losses, losses) -> float:
    """Mean relative divergence of a training-loss trajectory.

    ``mean(|l_t - ref_t| / (|ref_t| + eps))`` over the training steps:
    0 means the low-precision run tracks the reference optimization
    exactly; values around 1 mean the trajectories have decoupled.
    This is the suite's SR-vs-RNE training metric -- stochastic
    rounding keeps tiny weight updates from being swallowed, so its
    trajectory stays closer to the binary32 one.
    """
    ref = np.asarray(reference_losses, dtype=np.float64).ravel()
    got = np.asarray(losses, dtype=np.float64).ravel()
    if ref.shape != got.shape:
        raise ValueError(f"shape mismatch: {ref.shape} vs {got.shape}")
    if ref.size == 0:
        raise ValueError("empty loss trajectories")
    return float(np.mean(np.abs(got - ref) / (np.abs(ref) + 1e-12)))
