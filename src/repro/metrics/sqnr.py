"""Quality-of-result metrics: SQNR (Table III) and classification error."""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np


def sqnr_db(reference, approximation) -> float:
    """Signal-to-quantization-noise ratio in dB.

    ``10 * log10( sum(ref^2) / sum((ref - approx)^2) )`` over the
    flattened arrays -- the paper's Table III metric.  Returns ``inf``
    for a bit-exact result and ``-inf`` for a zero reference with
    non-zero error.
    """
    ref = np.asarray(reference, dtype=np.float64).ravel()
    approx = np.asarray(approximation, dtype=np.float64).ravel()
    if ref.shape != approx.shape:
        raise ValueError(
            f"shape mismatch: {ref.shape} vs {approx.shape}"
        )
    noise = np.sum((ref - approx) ** 2)
    signal = np.sum(ref ** 2)
    if noise == 0.0:
        return math.inf
    if signal == 0.0:
        return -math.inf
    return 10.0 * math.log10(signal / noise)


def classification_error(reference_labels: Sequence[int],
                         labels: Sequence[int]) -> float:
    """Fraction of misclassified samples (the case study's constraint)."""
    ref = np.asarray(reference_labels).ravel()
    got = np.asarray(labels).ravel()
    if ref.shape != got.shape:
        raise ValueError(f"shape mismatch: {ref.shape} vs {got.shape}")
    if ref.size == 0:
        raise ValueError("empty label arrays")
    return float(np.mean(ref != got))
