"""Quality-of-result metrics."""

from .nnqor import loss_divergence, max_abs_err
from .sqnr import classification_error, sqnr_db

__all__ = ["classification_error", "loss_divergence", "max_abs_err",
           "sqnr_db"]
