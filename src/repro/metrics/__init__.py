"""Quality-of-result metrics."""

from .sqnr import classification_error, sqnr_db

__all__ = ["classification_error", "sqnr_db"]
