"""Conversions: float<->float, float<->int, and Python-float bridges.

Float-to-float conversions (``fcvt.h.s``, ``fcvt.s.b``, ...) are the
backbone of transprecision code; the paper singles out "convert scalars
and assemble vectors" as a main bottleneck, which motivates the
cast-and-pack instructions implemented in :mod:`repro.fp.simd`.

Integer conversions follow RISC-V: out-of-range and NaN inputs saturate
to the most positive / most negative representable integer and raise NV
(NaN saturates to the most positive value).
"""

from __future__ import annotations

import struct
from typing import Tuple

from .flags import NV, NX
from .formats import BINARY32, BINARY64, FloatFormat
from .rounding import RoundingMode, round_and_pack
from .unpacked import Unpacked, unpack

Result = Tuple[int, int]


# ----------------------------------------------------------------------
# Float -> float
# ----------------------------------------------------------------------
def fcvt_f2f(
    src_fmt: FloatFormat, dst_fmt: FloatFormat, bits: int, rm: RoundingMode
) -> Result:
    """Convert a value between two floating-point formats.

    Widening conversions to a format with both larger precision and
    wider exponent range are always exact; narrowing conversions round
    and may overflow or go subnormal.
    """
    u = unpack(bits, src_fmt)
    if u.is_nan:
        return dst_fmt.quiet_nan, (NV if u.signaling else 0)
    if u.is_inf:
        return dst_fmt.inf(u.sign), 0
    if u.is_zero:
        return dst_fmt.zero(u.sign), 0
    return round_and_pack(dst_fmt, u.sign, u.sig, u.exp, rm)


# ----------------------------------------------------------------------
# Float -> integer
# ----------------------------------------------------------------------
def _round_to_int(u: Unpacked, rm: RoundingMode) -> Tuple[int, bool]:
    """Round a finite unpacked value to a Python integer.

    Returns ``(integer, inexact)``; the integer carries its sign.
    """
    if u.is_zero or u.sig == 0:
        return 0, False
    if u.exp >= 0:
        return (-(u.sig << u.exp) if u.sign else (u.sig << u.exp)), False
    discard = -u.exp
    kept = u.sig >> discard
    dropped = u.sig & ((1 << discard) - 1)
    if dropped == 0:
        return (-kept if u.sign else kept), False
    round_bit = (u.sig >> (discard - 1)) & 1
    sticky = 1 if (dropped & ((1 << (discard - 1)) - 1)) else 0
    increment = False
    if rm == RoundingMode.RNE or rm == RoundingMode.SR:
        # SR is defined over FP destinations only; integer conversions
        # under frm=SR round to nearest even so their results stay
        # within the [floor, ceil] envelope static analysis assumes.
        increment = bool(round_bit and (sticky or (kept & 1)))
    elif rm == RoundingMode.RTZ:
        increment = False
    elif rm == RoundingMode.RDN:
        increment = bool(u.sign)
    elif rm == RoundingMode.RUP:
        increment = not u.sign
    elif rm == RoundingMode.RMM:
        increment = bool(round_bit)
    else:  # pragma: no cover - DYN resolved by callers
        raise ValueError(f"cannot round with mode {rm!r}")
    if increment:
        kept += 1
    return (-kept if u.sign else kept), True


def fcvt_to_int(
    fmt: FloatFormat,
    bits: int,
    rm: RoundingMode,
    signed: bool = True,
    xlen: int = 32,
) -> Result:
    """``fcvt.w.s``-family conversion of a float to an integer register.

    Returns the integer as an *unsigned* ``xlen``-bit pattern (two's
    complement for negative results), matching what lands in an x
    register.
    """
    lo = -(1 << (xlen - 1)) if signed else 0
    hi = (1 << (xlen - 1)) - 1 if signed else (1 << xlen) - 1
    mask = (1 << xlen) - 1

    u = unpack(bits, fmt)
    if u.is_nan:
        return hi & mask, NV
    if u.is_inf:
        return (hi if not u.sign else lo) & mask, NV
    value, inexact = _round_to_int(u, rm)
    if value > hi:
        return hi & mask, NV
    if value < lo:
        return lo & mask, NV
    return value & mask, (NX if inexact else 0)


def fcvt_from_int(
    fmt: FloatFormat,
    value: int,
    rm: RoundingMode,
    signed: bool = True,
    xlen: int = 32,
) -> Result:
    """``fcvt.s.w``-family conversion of an integer register to a float.

    ``value`` is the raw ``xlen``-bit register pattern.
    """
    mask = (1 << xlen) - 1
    value &= mask
    if signed and value & (1 << (xlen - 1)):
        value -= 1 << xlen
    if value == 0:
        return fmt.pos_zero, 0
    sign = 1 if value < 0 else 0
    return round_and_pack(fmt, sign, abs(value), 0, rm)


# ----------------------------------------------------------------------
# Python-float bridges (for tests, data loading and the fast backend)
# ----------------------------------------------------------------------
def double_to_bits(value: float) -> int:
    """Raw binary64 pattern of a Python float."""
    (bits,) = struct.unpack("<Q", struct.pack("<d", value))
    return bits


def bits_to_double(bits: int) -> float:
    """Python float from a raw binary64 pattern."""
    (value,) = struct.unpack("<d", struct.pack("<Q", bits & (1 << 64) - 1))
    return value


def from_double(
    value: float, fmt: FloatFormat, rm: RoundingMode = RoundingMode.RNE
) -> int:
    """Encode a Python float into ``fmt`` (single rounding from binary64)."""
    bits, _ = fcvt_f2f(BINARY64, fmt, double_to_bits(value), rm)
    return bits


def to_double(bits: int, fmt: FloatFormat) -> float:
    """Decode ``fmt`` bits into a Python float.

    Exact for every format in the library: all of them are sub-formats
    of binary64 (binary64 itself converts trivially).
    """
    if fmt is BINARY64 or fmt.name == "binary64":
        return bits_to_double(bits)
    wide, flags = fcvt_f2f(fmt, BINARY64, bits, RoundingMode.RNE)
    assert flags == 0 or unpack(bits, fmt).is_snan, "widening must be exact"
    return bits_to_double(wide)


def float32_to_bits(value: float) -> int:
    """Round a Python float to binary32 and return the bit pattern."""
    return from_double(value, BINARY32)
