"""Packed-SIMD sub-word operations over the FP register file (Xfvec).

The "Xfvec" extension (paper Section III-B) adds vector forms of every
scalar operation for each format narrower than FLEN.  A vector lives in
a single FLEN-bit FP register: lane 0 occupies the least-significant
bits.  At FLEN=32 this gives 2x binary16 / 2x binary16alt / 4x binary8
lanes (paper Table II).

This module also implements the cast-and-pack instructions (``vfcpk*``)
and the *expanding* dot products of "Xfaux" (``vfdotpex``), which the
paper introduces because "convert scalars and assemble vectors" had
emerged as a main bottleneck of transprecision computing.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from . import arith, compare
from .convert import fcvt_f2f, fcvt_from_int, fcvt_to_int
from .formats import FloatFormat, vector_lanes
from .rounding import RoundingMode
from .unpacked import unpack

Result = Tuple[int, int]


# ----------------------------------------------------------------------
# Lane plumbing
# ----------------------------------------------------------------------
def lane_count(fmt: FloatFormat, flen: int) -> int:
    """Number of lanes, raising when the format has no vector form."""
    lanes = vector_lanes(fmt, flen)
    if lanes is None:
        raise ValueError(f"{fmt.name} has no vector form at FLEN={flen}")
    return lanes


def split_lanes(reg: int, fmt: FloatFormat, flen: int) -> List[int]:
    """Split an FLEN-bit register into lane bit patterns (lane 0 first)."""
    lanes = lane_count(fmt, flen)
    mask = fmt.bits_mask
    return [(reg >> (i * fmt.width)) & mask for i in range(lanes)]


def join_lanes(values: Sequence[int], fmt: FloatFormat, flen: int) -> int:
    """Pack lane bit patterns back into an FLEN-bit register."""
    lanes = lane_count(fmt, flen)
    if len(values) != lanes:
        raise ValueError(f"expected {lanes} lanes, got {len(values)}")
    reg = 0
    for i, v in enumerate(values):
        if v < 0 or v > fmt.bits_mask:
            raise ValueError(f"lane value {v:#x} out of range for {fmt.name}")
        reg |= v << (i * fmt.width)
    return reg


def replicate(scalar_bits: int, fmt: FloatFormat, flen: int) -> int:
    """Broadcast a scalar into every lane (the ``.r``-variant operand)."""
    return join_lanes([scalar_bits & fmt.bits_mask] * lane_count(fmt, flen), fmt, flen)


# ----------------------------------------------------------------------
# Lane-wise binary / unary operations
# ----------------------------------------------------------------------
def _lanewise2(
    op: Callable[..., Result],
    fmt: FloatFormat,
    flen: int,
    a: int,
    b: int,
    rm: RoundingMode,
) -> Result:
    width = fmt.width
    mask = fmt.bits_mask
    reg, flags = 0, 0
    # Inline split/join: op results are already in-range packed bits.
    for i in range(lane_count(fmt, flen)):
        shift = i * width
        bits, f = op(fmt, (a >> shift) & mask, (b >> shift) & mask, rm)
        reg |= bits << shift
        flags |= f
    return reg, flags


def vfadd(fmt: FloatFormat, flen: int, a: int, b: int, rm: RoundingMode) -> Result:
    """Lane-wise addition (``vfadd.<fmt>``)."""
    return _lanewise2(arith.fadd, fmt, flen, a, b, rm)


def vfsub(fmt: FloatFormat, flen: int, a: int, b: int, rm: RoundingMode) -> Result:
    """Lane-wise subtraction (``vfsub.<fmt>``)."""
    return _lanewise2(arith.fsub, fmt, flen, a, b, rm)


def vfmul(fmt: FloatFormat, flen: int, a: int, b: int, rm: RoundingMode) -> Result:
    """Lane-wise multiplication (``vfmul.<fmt>``)."""
    return _lanewise2(arith.fmul, fmt, flen, a, b, rm)


def vfdiv(fmt: FloatFormat, flen: int, a: int, b: int, rm: RoundingMode) -> Result:
    """Lane-wise division (``vfdiv.<fmt>``)."""
    return _lanewise2(arith.fdiv, fmt, flen, a, b, rm)


def vfsqrt(fmt: FloatFormat, flen: int, a: int, rm: RoundingMode) -> Result:
    """Lane-wise square root (``vfsqrt.<fmt>``)."""
    out, flags = [], 0
    for la in split_lanes(a, fmt, flen):
        bits, f = arith.fsqrt(fmt, la, rm)
        out.append(bits)
        flags |= f
    return join_lanes(out, fmt, flen), flags


def vfmin(fmt: FloatFormat, flen: int, a: int, b: int) -> Result:
    """Lane-wise minNum (``vfmin.<fmt>``)."""
    out, flags = [], 0
    for la, lb in zip(split_lanes(a, fmt, flen), split_lanes(b, fmt, flen)):
        bits, f = compare.fmin(fmt, la, lb)
        out.append(bits)
        flags |= f
    return join_lanes(out, fmt, flen), flags


def vfmax(fmt: FloatFormat, flen: int, a: int, b: int) -> Result:
    """Lane-wise maxNum (``vfmax.<fmt>``)."""
    out, flags = [], 0
    for la, lb in zip(split_lanes(a, fmt, flen), split_lanes(b, fmt, flen)):
        bits, f = compare.fmax(fmt, la, lb)
        out.append(bits)
        flags |= f
    return join_lanes(out, fmt, flen), flags


def vfmac(
    fmt: FloatFormat, flen: int, acc: int, a: int, b: int, rm: RoundingMode
) -> Result:
    """Lane-wise fused multiply-accumulate: ``acc[i] += a[i] * b[i]``."""
    out, flags = [], 0
    for lacc, la, lb in zip(
        split_lanes(acc, fmt, flen),
        split_lanes(a, fmt, flen),
        split_lanes(b, fmt, flen),
    ):
        bits, f = arith.ffma(fmt, la, lb, lacc, rm)
        out.append(bits)
        flags |= f
    return join_lanes(out, fmt, flen), flags


def vfsgnj(fmt: FloatFormat, flen: int, a: int, b: int) -> int:
    """Lane-wise sign injection."""
    out = [
        compare.fsgnj(fmt, la, lb)
        for la, lb in zip(split_lanes(a, fmt, flen), split_lanes(b, fmt, flen))
    ]
    return join_lanes(out, fmt, flen)


def _vcmp(op, fmt: FloatFormat, flen: int, a: int, b: int) -> Result:
    """Lane-wise comparison producing a per-lane bit mask in rd."""
    mask, flags = 0, 0
    for i, (la, lb) in enumerate(
        zip(split_lanes(a, fmt, flen), split_lanes(b, fmt, flen))
    ):
        bit, f = op(fmt, la, lb)
        mask |= bit << i
        flags |= f
    return mask, flags


def vfeq(fmt: FloatFormat, flen: int, a: int, b: int) -> Result:
    """Lane-wise quiet equality; result mask in an integer register."""
    return _vcmp(compare.feq, fmt, flen, a, b)


def vflt(fmt: FloatFormat, flen: int, a: int, b: int) -> Result:
    """Lane-wise signaling less-than mask."""
    return _vcmp(compare.flt, fmt, flen, a, b)


def vfle(fmt: FloatFormat, flen: int, a: int, b: int) -> Result:
    """Lane-wise signaling less-or-equal mask."""
    return _vcmp(compare.fle, fmt, flen, a, b)


# ----------------------------------------------------------------------
# Vector conversions
# ----------------------------------------------------------------------
def vfcvt_f2f(
    src_fmt: FloatFormat,
    dst_fmt: FloatFormat,
    flen: int,
    a: int,
    rm: RoundingMode,
) -> Result:
    """Lane-wise float-to-float conversion between equal-width formats.

    Used for ``vfcvt.h.ah`` / ``vfcvt.ah.h``; width-changing vector
    conversions go through cast-and-pack instead (as in the paper).
    """
    if src_fmt.width != dst_fmt.width:
        raise ValueError("vector f2f conversion requires equal widths")
    out, flags = [], 0
    for lane in split_lanes(a, src_fmt, flen):
        bits, f = fcvt_f2f(src_fmt, dst_fmt, lane, rm)
        out.append(bits)
        flags |= f
    return join_lanes(out, dst_fmt, flen), flags


def vfcvt_to_int(
    fmt: FloatFormat, flen: int, a: int, rm: RoundingMode, signed: bool = True
) -> Result:
    """Lane-wise conversion to same-width integers (``vfcvt.x.<fmt>``)."""
    out, flags = [], 0
    for lane in split_lanes(a, fmt, flen):
        bits, f = fcvt_to_int(fmt, lane, rm, signed=signed, xlen=fmt.width)
        out.append(bits)
        flags |= f
    return join_lanes(out, fmt, flen), flags


def vfcvt_from_int(
    fmt: FloatFormat, flen: int, a: int, rm: RoundingMode, signed: bool = True
) -> Result:
    """Lane-wise conversion from same-width integers (``vfcvt.<fmt>.x``)."""
    out, flags = [], 0
    lanes = lane_count(fmt, flen)
    for i in range(lanes):
        raw = (a >> (i * fmt.width)) & fmt.bits_mask
        bits, f = fcvt_from_int(fmt, raw, rm, signed=signed, xlen=fmt.width)
        out.append(bits)
        flags |= f
    return join_lanes(out, fmt, flen), flags


# ----------------------------------------------------------------------
# Cast-and-pack (vfcpk)
# ----------------------------------------------------------------------
def vfcpk(
    dst_fmt: FloatFormat,
    src_fmt: FloatFormat,
    flen: int,
    dest: int,
    a: int,
    b: int,
    pair_index: int,
    rm: RoundingMode,
) -> Result:
    """Convert two ``src_fmt`` scalars and pack them into a lane pair.

    ``vfcpka`` fills lanes {0, 1} (``pair_index = 0``), ``vfcpkb`` lanes
    {2, 3} (``pair_index = 1``), and so on; untouched lanes keep their
    previous contents from ``dest``.  This is the paper's answer to the
    scalar-convert-then-assemble bottleneck (Section III-B).
    """
    lanes = lane_count(dst_fmt, flen)
    lo_lane = pair_index * 2
    if lo_lane + 1 >= lanes + 1 and lanes != 1:
        raise ValueError(f"pair index {pair_index} out of range for {lanes} lanes")
    ca, fa = fcvt_f2f(src_fmt, dst_fmt, a, rm)
    cb, fb = fcvt_f2f(src_fmt, dst_fmt, b, rm)
    out = split_lanes(dest, dst_fmt, flen)
    out[lo_lane] = ca
    if lo_lane + 1 < lanes:
        out[lo_lane + 1] = cb
    return join_lanes(out, dst_fmt, flen), fa | fb


# ----------------------------------------------------------------------
# Expanding dot products (Xfaux)
# ----------------------------------------------------------------------
def vfdotpex(
    src_fmt: FloatFormat,
    dst_fmt: FloatFormat,
    flen: int,
    acc: int,
    a: int,
    b: int,
    rm: RoundingMode,
) -> Result:
    """Expanding SIMD dot product: ``acc += sum_i a[i] * b[i]``.

    ``acc`` and the result are ``dst_fmt`` scalars (binary32 in the
    paper's ``vfdotpex.h``); the products are computed exactly and the
    whole accumulation is rounded once, modelling a fused hardware
    datapath.
    """
    from .arith import _exact_sum, _invalid, _nan_result  # shared internals
    from .rounding import round_and_pack

    ua = [unpack(x, src_fmt) for x in split_lanes(a, src_fmt, flen)]
    ub = [unpack(x, src_fmt) for x in split_lanes(b, src_fmt, flen)]
    uacc = unpack(acc, dst_fmt)

    if uacc.is_nan or any(u.is_nan for u in ua + ub):
        return _nan_result(dst_fmt, uacc, *ua, *ub)

    terms = []
    inf_signs = set()
    if uacc.is_inf:
        inf_signs.add(uacc.sign)
    else:
        terms.append((uacc.sign, uacc.sig, uacc.exp))
    for x, y in zip(ua, ub):
        if x.is_inf or y.is_inf:
            if x.is_zero or y.is_zero:
                return _invalid(dst_fmt)  # 0 * inf in some lane
            inf_signs.add(x.sign ^ y.sign)
            continue
        terms.append((x.sign ^ y.sign, x.sig * y.sig, x.exp + y.exp))
    if inf_signs:
        if len(inf_signs) > 1:
            return _invalid(dst_fmt)  # inf - inf across lanes
        return dst_fmt.inf(inf_signs.pop()), 0

    exact = _exact_sum(tuple(terms))
    if exact is None:
        sign = 1 if rm == RoundingMode.RDN else 0
        return dst_fmt.zero(sign), 0
    sign, sig, exp = exact
    return round_and_pack(dst_fmt, sign, sig, exp, rm)
