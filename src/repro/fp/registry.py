"""The pluggable number-format registry.

The paper's smallFloat formats are IEEE-style minifloats, but the
transprecision design space is wider: posits (tapered precision, no
inf/subnormals), block formats with a shared exponent (MX), logarithmic
formats...  This module turns "a floating-point format" into a plugin
interface so those families can ride the whole stack -- assembler,
softfloat core, SIMD, lint, abstract interpretation, tuner and energy
model -- without per-format branches outside their own module.

A format is an object implementing the :class:`NumberFormat` protocol:

* **codec**: :meth:`~NumberFormat.decode` (bits -> exact unpacked value)
  and :meth:`~NumberFormat.round_pack` (exact value -> bits + flags).
  Every arithmetic funnel (:func:`repro.fp.unpacked.unpack`,
  :func:`repro.fp.rounding.round_and_pack`) dispatches through these
  two hooks, which is what makes :mod:`repro.fp.arith` format-generic.
* **bit-level ops**: :meth:`~NumberFormat.sign_of`,
  :meth:`~NumberFormat.with_sign`, :meth:`~NumberFormat.neg_bits`,
  :meth:`~NumberFormat.abs_bits`, :meth:`~NumberFormat.classify`
  (sign injection and fclass are *encoding*-specific: IEEE flips a sign
  bit, a posit takes the two's complement).
* **identity**: ``name`` / ``suffix`` (mnemonic, ``fadd.<suffix>``) /
  ``c_keyword`` (the kernel-language type) and lane geometry (``width``,
  ``has_vector``).
* **ISA metadata** for guest formats: ``guest_fmt2`` (the 2-bit format
  code in the CUSTOM-opcode encodings), ``cvt_code`` (the rs2 sub-code
  naming the format as a conversion operand) and ``ext_name``.
* **analysis/energy hooks**: :meth:`~NumberFormat.rnd_abs` (a sound
  absolute rounding-error bound for the abstract interpreter) and
  :meth:`~NumberFormat.energy_row` (per-operation-class pJ costs for
  the energy model).

Registration (:func:`register`) checks for name/suffix/keyword
collisions, then notifies subscribers (:func:`on_register`): the ISA
layer uses that callback to derive instruction specs for every format,
including ones registered after import.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from .. import ReproError

# ----------------------------------------------------------------------
# fclass result bits (RISC-V F extension layout).  They live here, at
# the bottom of the dependency stack, because every format codec needs
# them to implement classify(); repro.fp.compare re-exports them.
# ----------------------------------------------------------------------
CLASS_NEG_INF = 1 << 0
CLASS_NEG_NORMAL = 1 << 1
CLASS_NEG_SUBNORMAL = 1 << 2
CLASS_NEG_ZERO = 1 << 3
CLASS_POS_ZERO = 1 << 4
CLASS_POS_SUBNORMAL = 1 << 5
CLASS_POS_NORMAL = 1 << 6
CLASS_POS_INF = 1 << 7
CLASS_SNAN = 1 << 8
CLASS_QNAN = 1 << 9


class FormatRegistryError(ReproError):
    """A format could not be registered (name/suffix/keyword collision)."""


class FormatLookupError(ReproError, KeyError):
    """A format spec did not resolve against the registry.

    Subclasses ``KeyError`` too, so pre-registry callers using
    ``except KeyError`` keep working.
    """

    def __str__(self) -> str:  # KeyError repr()s its argument; undo that
        return self.args[0] if self.args else ""


class NumberFormat:
    """Base class / protocol for a registrable number format.

    Subclasses must provide the identity attributes (``name``,
    ``suffix``, ``c_keyword``, ``width``) and the codec pair
    (:meth:`decode` / :meth:`round_pack`).  The bit-level defaults below
    implement sign-magnitude encodings with the sign in the top bit
    (IEEE and IEEE-like formats); formats with a different negation rule
    (posits) override them.
    """

    # -- identity / classification flags ------------------------------
    #: True for the IEEE-754-style interchange formats.  The fast numpy
    #: backend vectorizes only these; everything else takes the exact
    #: element-wise path.
    ieee: bool = False
    #: Guest formats are non-IEEE extensions encoded in the CUSTOM
    #: opcode spaces rather than OP-FP.
    is_guest: bool = True
    #: Whether SIMD (vector) instruction forms exist for this format.
    has_vector: bool = True
    #: Whether the format encodes infinities.  Formats without them
    #: (posit, MX8) saturate on overflow and produce their NaN where
    #: IEEE would produce an infinity; the abstract interpreter uses
    #: this to model division by zero and overflow soundly.
    has_inf: bool = False
    #: Whether the format defines a shared-exponent *block* dot product
    #: (``vfdotpmx``); such formats implement :meth:`block_dotp`.
    has_block_dotp: bool = False
    #: 2-bit format code inside the guest CUSTOM encodings (guests only).
    guest_fmt2: int = 0
    #: rs2 sub-code naming this format as a conversion *operand*.
    #: IEEE formats use the paper's SRC_CODE table; guests get 8+.
    cvt_code: int = 0
    #: ISA extension name (``Xposit``, ``Xmx8``...; guests only).
    ext_name: str = ""

    # -- identity attributes subclasses must define -------------------
    name: str
    suffix: str
    c_keyword: str
    width: int

    @property
    def kernel_type(self) -> bool:
        """Usable as a kernel-language element type (fits a register)."""
        return self.width <= 32

    # -- codec (must be implemented) ----------------------------------
    def decode(self, bits: int):
        """Decode ``bits`` into an exact :class:`repro.fp.unpacked.Unpacked`."""
        raise NotImplementedError

    def round_pack(self, sign: int, sig: int, exp: int, rm) -> Tuple[int, int]:
        """Round the exact value ``(-1)**sign * sig * 2**exp`` into bits.

        Returns ``(bits, fflags)``.  ``sig`` is strictly positive; the
        generic :func:`repro.fp.rounding.round_and_pack` funnel handles
        the zero-significand case before dispatching here.
        """
        raise NotImplementedError

    # -- special-value encodings (must be implemented) ----------------
    #: Canonical quiet NaN encoding (posit: NaR; MX8: the NaN code).
    quiet_nan: int
    #: Encoding of +0.0 (shared zero for formats without signed zero).
    pos_zero: int = 0

    def inf(self, sign: int) -> int:
        """Encoding of the overflow "infinity" result, or the closest
        notion the format has (posit/MX8 have no infinity: NaR / NaN)."""
        raise NotImplementedError

    def zero(self, sign: int) -> int:
        """Encoding of zero with the given sign (collapsed when the
        format has a single zero)."""
        raise NotImplementedError

    def max_finite_signed(self, sign: int) -> int:
        """Encoding of the largest-magnitude finite value with a sign."""
        raise NotImplementedError

    # -- bit-level operations (sign-magnitude defaults) ---------------
    @property
    def sign_mask(self) -> int:
        return 1 << (self.width - 1)

    @property
    def bits_mask(self) -> int:
        return (1 << self.width) - 1

    def sign_of(self, bits: int) -> int:
        """The sign (0/1) carried by an encoding."""
        return (bits >> (self.width - 1)) & 1

    def with_sign(self, bits: int, sign: int) -> int:
        """Rebuild ``bits`` carrying ``sign`` (fsgnj primitive)."""
        return (bits & ~self.sign_mask & self.bits_mask) | (
            (sign & 1) << (self.width - 1))

    def neg_bits(self, bits: int) -> int:
        """The encoding of the negated value (fneg primitive)."""
        return (bits ^ self.sign_mask) & self.bits_mask

    def abs_bits(self, bits: int) -> int:
        """The encoding of the absolute value (fabs primitive)."""
        return self.with_sign(bits, 0)

    def classify(self, bits: int) -> int:
        """The RISC-V ``fclass`` 10-bit one-hot mask for ``bits``."""
        raise NotImplementedError

    # -- exact values / analysis hooks --------------------------------
    @property
    def max_value(self) -> float:
        """Largest finite value as a Python float."""
        raise NotImplementedError

    @property
    def min_normal_value(self) -> float:
        """Smallest positive "full-precision" value as a Python float."""
        raise NotImplementedError

    @property
    def machine_epsilon(self) -> float:
        """Distance from 1.0 to the next representable value."""
        raise NotImplementedError

    @property
    def dynamic_range_db(self) -> float:
        """Dynamic range max/min-representable in dB (20*log10)."""
        import math

        return 20.0 * math.log10(self.max_value / self.min_positive_value)

    @property
    def min_positive_value(self) -> float:
        """Smallest positive representable value as a Python float."""
        raise NotImplementedError

    def rnd_abs(self, mag: float) -> float:
        """A sound absolute rounding-error bound over ``[-mag, mag]``.

        The abstract interpreter widens every rounded interval by this
        amount; soundness requires ``|round(x) - x| <= rnd_abs(mag)``
        for every ``|x| <= mag`` in range (overflow is tracked
        separately via ``max_value``).
        """
        raise NotImplementedError

    def energy_row(self) -> Dict[str, float]:
        """Per-operation-class energy costs in pJ.

        Recognized keys: ``arith``, ``fma``, ``div``, ``misc`` (scalar)
        and ``vec_arith``, ``vec_fma``, ``vec_div`` (packed-SIMD), plus
        ``dotp`` for a format-specific dot-product unit.  Missing keys
        fall back to the energy model's documented defaults.
        """
        return {}

    def block_dotp(self, acc_bits: int, block_a: int, block_b: int,
                   rm) -> Tuple[int, int]:
        """Shared-exponent block dot product (``vfdotpmx``).

        Only meaningful when :attr:`has_block_dotp` is true; takes the
        binary32 accumulator bits plus two packed operand blocks and
        returns ``(binary32 bits, fflags)`` with a single rounding.
        """
        raise NotImplementedError

    def decode_lanes(self, bits: int, flen: int = 32) -> List[float]:
        """Decode a packed register image into per-lane binary64 values.

        The default splits ``flen`` bits into ``flen // width`` lanes of
        this format.  Block formats override it: an MX8 register image
        is a shared-scale block whose decoded lane values already
        include the scale.
        """
        from .convert import to_double

        mask = self.bits_mask
        return [to_double((bits >> (i * self.width)) & mask, self)
                for i in range(flen // self.width)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name})"


# ----------------------------------------------------------------------
# The registry proper
# ----------------------------------------------------------------------
_BY_NAME: Dict[str, NumberFormat] = {}
_BY_SUFFIX: Dict[str, NumberFormat] = {}
_BY_KEYWORD: Dict[str, NumberFormat] = {}
_CALLBACKS: List[Callable[[NumberFormat], None]] = []


def register(fmt: NumberFormat) -> NumberFormat:
    """Register a format, rejecting name/suffix/keyword collisions.

    Re-registering the *same object* is an idempotent no-op (module
    reloads); registering a different object under an existing name,
    suffix or C keyword raises :class:`FormatRegistryError`.
    """
    for table, key, what in ((_BY_NAME, fmt.name, "name"),
                             (_BY_SUFFIX, fmt.suffix, "suffix"),
                             (_BY_KEYWORD, fmt.c_keyword, "C keyword")):
        existing = table.get(key)
        if existing is not None and existing is not fmt:
            raise FormatRegistryError(
                f"cannot register format {fmt.name!r}: {what} {key!r} "
                f"is already taken by {existing.name!r}")
    if _BY_NAME.get(fmt.name) is fmt:
        return fmt  # already registered
    _BY_NAME[fmt.name] = fmt
    _BY_SUFFIX[fmt.suffix] = fmt
    _BY_KEYWORD[fmt.c_keyword] = fmt
    for callback in list(_CALLBACKS):
        callback(fmt)
    return fmt


def on_register(callback: Callable[[NumberFormat], None]) -> None:
    """Subscribe to registrations; replayed for already-known formats.

    The ISA layer derives instruction specs per format this way, so a
    format registered after :mod:`repro.isa` imported still gets its
    instructions.
    """
    _CALLBACKS.append(callback)
    for fmt in list(_BY_NAME.values()):
        callback(fmt)


def all_formats() -> Tuple[NumberFormat, ...]:
    """Every registered format, in registration order."""
    return tuple(_BY_NAME.values())


def guest_formats() -> Tuple[NumberFormat, ...]:
    """Registered non-IEEE guest formats, in registration order."""
    return tuple(f for f in _BY_NAME.values() if f.is_guest)


def kernel_ftypes() -> Tuple[str, ...]:
    """C keywords of formats usable as kernel element types."""
    return tuple(f.c_keyword for f in _BY_NAME.values() if f.kernel_type)


def by_suffix(suffix: str) -> NumberFormat:
    """The format owning a mnemonic suffix (``fadd.<suffix>``)."""
    fmt = _BY_SUFFIX.get(suffix)
    if fmt is None:
        raise _lookup_error(suffix)
    return fmt


def by_keyword(keyword: str) -> NumberFormat:
    """The format behind a kernel-language type keyword."""
    fmt = _BY_KEYWORD.get(keyword)
    if fmt is None:
        raise _lookup_error(keyword)
    return fmt


def by_name(name: str) -> NumberFormat:
    """The format registered under a given name."""
    fmt = _BY_NAME.get(name)
    if fmt is None:
        raise _lookup_error(name)
    return fmt


def lookup(spec) -> NumberFormat:
    """Resolve a :class:`NumberFormat`, name, suffix or C keyword."""
    if isinstance(spec, NumberFormat):
        return spec
    for table in (_BY_NAME, _BY_SUFFIX, _BY_KEYWORD):
        fmt = table.get(spec)
        if fmt is not None:
            return fmt
    raise _lookup_error(spec)


def _lookup_error(spec) -> FormatLookupError:
    return FormatLookupError(
        f"unknown number format: {spec!r} "
        f"(registered names: {', '.join(sorted(_BY_NAME)) or 'none'}; "
        f"suffixes: {', '.join(sorted(_BY_SUFFIX)) or 'none'}; "
        f"keywords: {', '.join(sorted(_BY_KEYWORD)) or 'none'})")
