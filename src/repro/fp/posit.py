"""The Xposit guest extension: posit8 and posit16 codecs.

Posits [Gustafson & Yonemoto 2017; Posit Standard 2022] trade IEEE's
fixed exponent field for *tapered* precision: a unary regime field
spends bits on dynamic range only when the magnitude is extreme, leaving
more fraction bits near 1.0.  Key differences from IEEE that the
registry hooks absorb:

* a single zero (``0b0...0``) and a single non-value **NaR**
  (``0b10...0``) instead of signed zeros/infs and NaN payloads;
* negation is **two's complement** of the whole encoding, not a sign
  bit flip;
* no subnormals and no overflow to infinity: results beyond
  ``[minpos, maxpos]`` saturate (with OF/UF + NX flags in this
  implementation, so harnesses can still detect range exhaustion);
* rounding is round-to-nearest-even *on the encoding grid*, which this
  module implements by building the exact unbounded encoding as a big
  integer and reusing the core :func:`_shift_right_round` primitive --
  the posit encoding is monotone in the body bits, so binary carries
  propagate across fraction/exponent/regime boundaries correctly.

The formats registered here follow the 2022 standard sizes used by the
"posits on RISC-V" line of work (PERCIVAL, Xposit): ``posit8`` with
``es=0`` and ``posit16`` with ``es=1``, both quire-free (fused ops
round once into the destination format, like the host smallFloat FMA).
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from . import registry
from .flags import NX, OF, UF
from .registry import (
    CLASS_NEG_NORMAL,
    CLASS_POS_NORMAL,
    CLASS_POS_ZERO,
    CLASS_QNAN,
    NumberFormat,
)

#: Energy per operation class in pJ.  Derived from the PERCIVAL /
#: PPU-lite synthesis comparisons (posit ALUs come in ~20-25% above an
#: IEEE FPU of the same width in UMC65-class nodes) scaled onto this
#: repo's FPnew-based table so cross-format comparisons stay coherent.
_POSIT_ENERGY: Dict[str, Dict[str, float]] = {
    "posit8": {"arith": 2.9, "fma": 3.6, "div": 8.0, "misc": 1.8,
               "vec_arith": 6.4, "vec_fma": 8.2, "vec_div": 18.0,
               "dotp": 8.8},
    "posit16": {"arith": 4.4, "fma": 5.5, "div": 15.5, "misc": 2.2,
                "vec_arith": 7.0, "vec_fma": 9.0, "vec_div": 23.0,
                "dotp": 9.6},
}


class PositFormat(NumberFormat):
    """A standard posit format with ``n`` bits and ``es`` exponent bits."""

    ieee = False
    is_guest = True
    has_vector = True
    has_inf = False
    ext_name = "Xposit"

    def __init__(self, name: str, n: int, es: int, suffix: str,
                 c_keyword: str, guest_fmt2: int, cvt_code: int) -> None:
        if n < 3:
            raise ValueError("posit width must be at least 3")
        self.name = name
        self.width = n
        self.es = es
        self.suffix = suffix
        self.c_keyword = c_keyword
        self.guest_fmt2 = guest_fmt2
        self.cvt_code = cvt_code
        #: NaR -- the single non-value; routed through the NaN paths.
        self.quiet_nan = 1 << (n - 1)
        #: Largest scale: maxpos = 2**((n-2) * 2**es).
        self.max_scale = (n - 2) << es
        #: Body (encoding without the sign bit) of maxpos / minpos.
        self.max_body = (1 << (n - 1)) - 1
        self.min_body = 1

    # ------------------------------------------------------------------
    # Bit-level operations: two's-complement negation
    # ------------------------------------------------------------------
    def neg_bits(self, bits: int) -> int:
        # Two's complement; 0 and NaR are their own negations.
        return (-bits) & self.bits_mask

    def abs_bits(self, bits: int) -> int:
        if self.sign_of(bits) and bits != self.quiet_nan:
            return self.neg_bits(bits)
        return bits

    def with_sign(self, bits: int, sign: int) -> int:
        mag = self.abs_bits(bits)
        return self.neg_bits(mag) if (sign & 1) else mag

    # ------------------------------------------------------------------
    # Special values
    # ------------------------------------------------------------------
    def inf(self, sign: int) -> int:
        # No infinity: the closest notion is NaR.
        return self.quiet_nan

    def zero(self, sign: int) -> int:
        return 0  # single unsigned zero

    def max_finite_signed(self, sign: int) -> int:
        return self.neg_bits(self.max_body) if sign else self.max_body

    # ------------------------------------------------------------------
    # Codec
    # ------------------------------------------------------------------
    def decode(self, bits: int):
        from .unpacked import Kind, Unpacked

        if bits == 0:
            return Unpacked(Kind.ZERO, sign=0)
        if bits == self.quiet_nan:
            return Unpacked(Kind.NAN, sign=1, signaling=False)
        n = self.width
        sign = (bits >> (n - 1)) & 1
        body = ((-bits) & self.bits_mask) if sign else bits
        # Scan the regime: a run of identical bits from bit n-2 down,
        # terminated by the opposite bit (or the end of the word).
        r0 = (body >> (n - 2)) & 1
        run = 1
        pos = n - 3
        while pos >= 0 and ((body >> pos) & 1) == r0:
            run += 1
            pos -= 1
        k = (run - 1) if r0 else -run
        regime_len = run + (1 if pos >= 0 else 0)
        rest = n - 1 - regime_len  # bits left for exponent + fraction
        e_bits = min(self.es, rest)
        frac_bits = rest - e_bits
        e_field = (body >> frac_bits) & ((1 << e_bits) - 1) if e_bits else 0
        # A truncated exponent field is padded with zeros on the right.
        e = e_field << (self.es - e_bits)
        frac = body & ((1 << frac_bits) - 1)
        scale = (k << self.es) + e
        sig = (1 << frac_bits) | frac
        return Unpacked(Kind.FINITE, sign=sign, sig=sig,
                        exp=scale - frac_bits)

    def round_pack(self, sign: int, sig: int, exp: int, rm) -> Tuple[int, int]:
        from .rounding import _shift_right_round

        n = self.width
        nbits = sig.bit_length()
        scale = exp + nbits - 1  # exponent of the value's MSB
        k = scale >> self.es
        e = scale - (k << self.es)
        fb = nbits - 1  # fraction bits below the hidden bit
        # Unbounded-precision encoding body: regime, exponent, fraction.
        if k >= 0:
            regime = ((1 << (k + 1)) - 1) << 1  # k+1 ones, terminating 0
            regime_len = k + 2
        else:
            regime = 1  # -k zeros, terminating 1
            regime_len = -k + 1
        full = ((regime << self.es) | e) << fb | (sig - (1 << fb))
        full_len = regime_len + self.es + fb
        body, inexact = _shift_right_round(full, full_len - (n - 1), rm, sign)
        flags = NX if inexact else 0
        if body > self.max_body:
            # Rounded past maxpos: posits saturate, never round to NaR.
            body = self.max_body
            flags |= OF | NX
        elif body < self.min_body:
            # Rounded below minpos: never round a non-zero value to zero.
            body = self.min_body
            flags |= UF | NX
        bits = self.neg_bits(body) if sign else body
        return bits, flags

    def classify(self, bits: int) -> int:
        if bits == 0:
            return CLASS_POS_ZERO  # the single zero reads as +0
        if bits == self.quiet_nan:
            return CLASS_QNAN  # NaR
        # All other posits are "normal"; there are no subnormals/infs.
        return CLASS_NEG_NORMAL if self.sign_of(bits) else CLASS_POS_NORMAL

    # ------------------------------------------------------------------
    # Exact values / analysis hooks
    # ------------------------------------------------------------------
    @property
    def max_value(self) -> float:
        return float(2.0 ** self.max_scale)

    @property
    def min_positive_value(self) -> float:
        return float(2.0 ** -self.max_scale)

    @property
    def min_normal_value(self) -> float:
        # Posits have no subnormals: every value is "normal".
        return self.min_positive_value

    @property
    def machine_epsilon(self) -> float:
        # Around 1.0 the regime is 2 bits, leaving n-2-es fraction bits.
        return float(2.0 ** -(self.width - 2 - self.es))

    def rnd_abs(self, mag: float) -> float:
        """Max grid gap over ``[-mag, mag]`` (tapered precision!).

        The gap grows with the magnitude's regime length, so the bound
        is evaluated at ``mag`` itself: scale ``s >= log2(mag)``, the
        posit holding it keeps ``F = n-1-regime_len-es`` fraction bits,
        and adjacent posits there differ by ``2**(s-F)``.  The full gap
        (not half) covers directed rounding modes; one binade of slack
        from the frexp ceiling keeps it sound at binade boundaries.
        """
        if mag <= 0.0:
            return self.min_positive_value
        _, s = math.frexp(mag)  # mag = m * 2**s with m in [0.5, 1)
        s = max(-self.max_scale, min(self.max_scale, s))
        k = s >> self.es
        regime_len = (k + 2) if k >= 0 else (-k + 1)
        frac_bits = max(0, self.width - 1 - regime_len - self.es)
        return float(2.0 ** (s - frac_bits))

    def energy_row(self) -> Dict[str, float]:
        return _POSIT_ENERGY.get(self.name, {})


POSIT8 = PositFormat("posit8", n=8, es=0, suffix="p8", c_keyword="posit8",
                     guest_fmt2=0b00, cvt_code=8)
POSIT16 = PositFormat("posit16", n=16, es=1, suffix="p16",
                      c_keyword="posit16", guest_fmt2=0b01, cvt_code=9)

registry.register(POSIT8)
registry.register(POSIT16)
