"""Correctly rounded softfloat arithmetic for every smallFloat format.

This is the functional model of FPnew, the transprecision FPU the paper
evaluates.  Operands are unpacked into exact integer-scaled values,
combined with exact big-integer arithmetic (division and square root
keep ``p + 2`` result bits plus a sticky bit), and rounded exactly once
through :func:`repro.fp.rounding.round_and_pack`.

All functions return ``(result_bits, fflags)``.  NaN handling follows
RISC-V: operations never propagate NaN payloads; any NaN input yields
the canonical quiet NaN, and signaling NaNs additionally raise NV.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from .flags import DZ, NV
from .formats import FloatFormat
from .rounding import RoundingMode, round_and_pack
from .unpacked import Unpacked, unpack

Result = Tuple[int, int]


# ----------------------------------------------------------------------
# Special-value helpers
# ----------------------------------------------------------------------
def _nan_result(fmt: FloatFormat, *operands: Unpacked) -> Result:
    """Canonical quiet NaN; NV iff any operand NaN is signaling."""
    flags = NV if any(u.is_snan for u in operands) else 0
    return fmt.quiet_nan, flags


def _invalid(fmt: FloatFormat) -> Result:
    """Canonical quiet NaN with the invalid-operation flag."""
    return fmt.quiet_nan, NV


def _cancel_zero_sign(rm: RoundingMode) -> int:
    """Sign of an exact-cancellation zero: -0 only when rounding down."""
    return 1 if rm == RoundingMode.RDN else 0


# ----------------------------------------------------------------------
# Exact combination of finite unpacked values
# ----------------------------------------------------------------------
def _exact_sum(
    terms: Tuple[Tuple[int, int, int], ...]
) -> Optional[Tuple[int, int, int]]:
    """Exactly sum ``(sign, sig, exp)`` terms; ``None`` on cancellation.

    Zero terms (``sig == 0``) are permitted and ignored.
    """
    live = [(s, m, e) for (s, m, e) in terms if m != 0]
    if not live:
        return None
    common = min(e for (_, _, e) in live)
    total = 0
    for sign, sig, exp in live:
        scaled = sig << (exp - common)
        total += -scaled if sign else scaled
    if total == 0:
        return None
    if total < 0:
        return 1, -total, common
    return 0, total, common


# ----------------------------------------------------------------------
# Addition / subtraction
# ----------------------------------------------------------------------
def fadd(fmt: FloatFormat, a: int, b: int, rm: RoundingMode) -> Result:
    """``a + b``, correctly rounded in ``fmt``."""
    ua, ub = unpack(a, fmt), unpack(b, fmt)
    if ua.is_nan or ub.is_nan:
        return _nan_result(fmt, ua, ub)
    if ua.is_inf and ub.is_inf:
        if ua.sign != ub.sign:
            return _invalid(fmt)  # inf - inf
        return fmt.inf(ua.sign), 0
    if ua.is_inf:
        return fmt.inf(ua.sign), 0
    if ub.is_inf:
        return fmt.inf(ub.sign), 0
    if ua.is_zero and ub.is_zero:
        # IEEE: equal signs keep the sign, opposite signs give the
        # cancellation zero of the rounding mode.
        if ua.sign == ub.sign:
            return fmt.zero(ua.sign), 0
        return fmt.zero(_cancel_zero_sign(rm)), 0
    exact = _exact_sum(((ua.sign, ua.sig, ua.exp), (ub.sign, ub.sig, ub.exp)))
    if exact is None:
        return fmt.zero(_cancel_zero_sign(rm)), 0
    sign, sig, exp = exact
    return round_and_pack(fmt, sign, sig, exp, rm)


def fsub(fmt: FloatFormat, a: int, b: int, rm: RoundingMode) -> Result:
    """``a - b``: addition with the second operand's sign flipped."""
    ub = unpack(b, fmt)
    if ub.is_nan:
        # Flipping a NaN's sign bit must not quiet it; recompute directly.
        ua = unpack(a, fmt)
        return _nan_result(fmt, ua, ub)
    return fadd(fmt, a, fmt.neg_bits(b), rm)


# ----------------------------------------------------------------------
# Multiplication
# ----------------------------------------------------------------------
def fmul(fmt: FloatFormat, a: int, b: int, rm: RoundingMode) -> Result:
    """``a * b``, correctly rounded in ``fmt``."""
    ua, ub = unpack(a, fmt), unpack(b, fmt)
    if ua.is_nan or ub.is_nan:
        return _nan_result(fmt, ua, ub)
    sign = ua.sign ^ ub.sign
    if ua.is_inf or ub.is_inf:
        if ua.is_zero or ub.is_zero:
            return _invalid(fmt)  # 0 * inf
        return fmt.inf(sign), 0
    if ua.is_zero or ub.is_zero:
        return fmt.zero(sign), 0
    return round_and_pack(fmt, sign, ua.sig * ub.sig, ua.exp + ub.exp, rm)


# ----------------------------------------------------------------------
# Division
# ----------------------------------------------------------------------
def fdiv(fmt: FloatFormat, a: int, b: int, rm: RoundingMode) -> Result:
    """``a / b``, correctly rounded in ``fmt``."""
    ua, ub = unpack(a, fmt), unpack(b, fmt)
    if ua.is_nan or ub.is_nan:
        return _nan_result(fmt, ua, ub)
    sign = ua.sign ^ ub.sign
    if ua.is_inf:
        if ub.is_inf:
            return _invalid(fmt)  # inf / inf
        return fmt.inf(sign), 0
    if ub.is_inf:
        return fmt.zero(sign), 0
    if ub.is_zero:
        if ua.is_zero:
            return _invalid(fmt)  # 0 / 0
        return fmt.inf(sign), DZ
    if ua.is_zero:
        return fmt.zero(sign), 0

    # Long-divide with enough quotient bits that the folded sticky bit
    # sits strictly below the rounding position: p + 3 bits suffice.
    shift = fmt.precision + 3 + max(0, ub.sig.bit_length() - ua.sig.bit_length())
    quotient, remainder = divmod(ua.sig << shift, ub.sig)
    exp = ua.exp - ub.exp - shift
    # Fold the sticky bit below the quotient's LSB.
    sig = (quotient << 1) | (1 if remainder else 0)
    return round_and_pack(fmt, sign, sig, exp - 1, rm)


# ----------------------------------------------------------------------
# Square root
# ----------------------------------------------------------------------
def fsqrt(fmt: FloatFormat, a: int, rm: RoundingMode) -> Result:
    """``sqrt(a)``, correctly rounded in ``fmt``."""
    ua = unpack(a, fmt)
    if ua.is_nan:
        return _nan_result(fmt, ua)
    if ua.is_zero:
        return fmt.zero(ua.sign), 0  # sqrt(-0) == -0
    if ua.sign:
        return _invalid(fmt)
    if ua.is_inf:
        return fmt.pos_inf, 0

    sig, exp = ua.sig, ua.exp
    if exp & 1:
        sig <<= 1
        exp -= 1
    # Scale so the integer root carries at least p + 3 bits.
    want = 2 * (fmt.precision + 3)
    extra = max(0, want - sig.bit_length())
    extra += extra & 1  # keep the exponent even
    sig <<= extra
    exp -= extra
    root = math.isqrt(sig)
    remainder = sig - root * root
    out_sig = (root << 1) | (1 if remainder else 0)
    return round_and_pack(fmt, 0, out_sig, exp // 2 - 1, rm)


# ----------------------------------------------------------------------
# Fused multiply-add (one rounding, per IEEE)
# ----------------------------------------------------------------------
def ffma(
    fmt: FloatFormat,
    a: int,
    b: int,
    c: int,
    rm: RoundingMode,
    negate_product: bool = False,
    negate_addend: bool = False,
) -> Result:
    """Fused ``±(a * b) ± c`` with a single rounding step.

    The four RISC-V fused ops map onto the two negation knobs:
    ``fmadd`` (False, False), ``fmsub`` (False, True),
    ``fnmsub`` (True, False), ``fnmadd`` (True, True).
    """
    return fma_mixed(fmt, fmt, a, b, c, rm, negate_product, negate_addend)


def fma_mixed(
    src_fmt: FloatFormat,
    dst_fmt: FloatFormat,
    a: int,
    b: int,
    c: int,
    rm: RoundingMode,
    negate_product: bool = False,
    negate_addend: bool = False,
) -> Result:
    """FMA with ``a, b`` in ``src_fmt`` and ``c``/result in ``dst_fmt``.

    With ``src_fmt == dst_fmt`` this is the ordinary fused op; with a
    narrower source it models the *expanding* multiply-accumulate of the
    Xfaux extension (``fmacex.s.h`` etc.), which skips the explicit
    conversion instructions the paper identifies as overhead (Fig. 5).
    """
    ua, ub = unpack(a, src_fmt), unpack(b, src_fmt)
    uc = unpack(c, dst_fmt)
    if ua.is_nan or ub.is_nan or uc.is_nan:
        return _nan_result(dst_fmt, ua, ub, uc)

    prod_sign = ua.sign ^ ub.sign ^ (1 if negate_product else 0)
    add_sign = uc.sign ^ (1 if negate_addend else 0)

    # Invalid: 0 * inf in the product (regardless of the addend).
    if (ua.is_inf and ub.is_zero) or (ua.is_zero and ub.is_inf):
        return _invalid(dst_fmt)

    prod_inf = ua.is_inf or ub.is_inf
    if prod_inf and uc.is_inf:
        if prod_sign != add_sign:
            return _invalid(dst_fmt)  # inf - inf
        return dst_fmt.inf(prod_sign), 0
    if prod_inf:
        return dst_fmt.inf(prod_sign), 0
    if uc.is_inf:
        return dst_fmt.inf(add_sign), 0

    prod_sig = ua.sig * ub.sig
    prod_exp = ua.exp + ub.exp
    if prod_sig == 0 and uc.is_zero:
        if prod_sign == add_sign:
            return dst_fmt.zero(prod_sign), 0
        return dst_fmt.zero(_cancel_zero_sign(rm)), 0
    exact = _exact_sum(
        ((prod_sign, prod_sig, prod_exp), (add_sign, uc.sig, uc.exp))
    )
    if exact is None:
        return dst_fmt.zero(_cancel_zero_sign(rm)), 0
    sign, sig, exp = exact
    return round_and_pack(dst_fmt, sign, sig, exp, rm)


def fmul_widen(
    src_fmt: FloatFormat, dst_fmt: FloatFormat, a: int, b: int, rm: RoundingMode
) -> Result:
    """Expanding multiply (``fmulex``): narrow operands, wide result.

    Because the product of two ``src_fmt`` values always fits a format
    with at least double the precision, the common cases are exact.
    """
    ua, ub = unpack(a, src_fmt), unpack(b, src_fmt)
    if ua.is_nan or ub.is_nan:
        return _nan_result(dst_fmt, ua, ub)
    sign = ua.sign ^ ub.sign
    if ua.is_inf or ub.is_inf:
        if ua.is_zero or ub.is_zero:
            return _invalid(dst_fmt)
        return dst_fmt.inf(sign), 0
    if ua.is_zero or ub.is_zero:
        return dst_fmt.zero(sign), 0
    return round_and_pack(dst_fmt, sign, ua.sig * ub.sig, ua.exp + ub.exp, rm)
