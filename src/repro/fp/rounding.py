"""Rounding modes and the central round-and-pack routine.

Every arithmetic operation in :mod:`repro.fp` reduces its result to an
*exact* value ``(-1)**sign * sig * 2**exp`` over Python's arbitrary
precision integers (division and square root additionally carry a sticky
bit folded into the significand's LSB).  This module performs the single
rounding step that converts such an exact value into a target format's
bit pattern, raising the correct IEEE exception flags.

RISC-V exposes five rounding modes in the ``frm`` field of ``fcsr`` and
in the instruction ``rm`` field; the smallFloat extensions reuse the
same modes.  Tininess is detected *after* rounding, matching the RISC-V
specification (and FPnew, the hardware this reproduction models).
"""

from __future__ import annotations

import enum
from typing import Tuple

from .flags import NX, OF, UF
from .formats import FloatFormat


class RoundingMode(enum.IntEnum):
    """RISC-V rounding modes (values match the ``rm`` encoding)."""

    #: Round to nearest, ties to even.
    RNE = 0b000
    #: Round towards zero.
    RTZ = 0b001
    #: Round down (towards negative infinity).
    RDN = 0b010
    #: Round up (towards positive infinity).
    RUP = 0b011
    #: Round to nearest, ties to max magnitude (away from zero).
    RMM = 0b100
    #: Stochastic rounding (the Xfsr extension): round up with
    #: probability equal to the discarded fraction, decided by a
    #: deterministic counter-based PRF keyed per execution lane (see
    #: :func:`set_sr_key`).  Claims the previously reserved ``frm``
    #: encoding 5; encoding 6 stays reserved and still traps.
    SR = 0b101
    #: Dynamic: take the rounding mode from ``fcsr.frm``.
    #: (Repurposed by Xf16alt to select the alternate 16-bit format;
    #: when it appears as an *operating* mode it is resolved before any
    #: arithmetic is performed.)
    DYN = 0b111


#: The six operational rounding modes (DYN must be resolved first).
OPERATIONAL_MODES = (
    RoundingMode.RNE,
    RoundingMode.RTZ,
    RoundingMode.RDN,
    RoundingMode.RUP,
    RoundingMode.RMM,
    RoundingMode.SR,
)


# ----------------------------------------------------------------------
# Stochastic rounding PRF
# ----------------------------------------------------------------------
# SR must be reproducible (same program, same data, same key -> same
# bits) and engine-independent (the scalar, fast-path and lockstep
# engines retire the same instruction schedule per lane but may batch
# work differently).  A stateful stream generator would make results
# depend on global evaluation order, so the draw is a stateless keyed
# PRF instead: its "counter" is the exact value being rounded -- the
# full significand, the discard width and the sign -- mixed with a
# per-lane key.  Identical rounding events therefore reuse one draw,
# while any two distinct exact values draw independently.  Across keys
# the draw is uniform, so E[SR(x)] over keys equals x exactly:
# P(round up) == dropped / 2**discard.

_M64 = (1 << 64) - 1

#: The ambient SR key.  The harness and the lockstep engine set this
#: per lane around execution (see :func:`set_sr_key`); the default key
#: 0 is a valid lane key, so bare :class:`Simulator` runs are still
#: deterministic.
_SR_KEY = 0


def set_sr_key(key: int) -> int:
    """Install the ambient SR lane key; returns the previous key.

    The key seeds the stochastic-rounding PRF for every SR-rounded
    operation until the next call.  Callers must restore the previous
    key (try/finally) so nested scopes -- the lockstep engine draining
    lanes into scalar simulators, for example -- stay correct.
    """
    global _SR_KEY
    previous = _SR_KEY
    _SR_KEY = key & _M64
    return previous


def get_sr_key() -> int:
    """The ambient SR lane key (see :func:`set_sr_key`)."""
    return _SR_KEY


def _mix64(x: int) -> int:
    """The splitmix64 finalizer: a strong 64-bit mixing bijection."""
    x &= _M64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
    return x ^ (x >> 31)


def _sr_draw(sign: int, sig: int, discard: int) -> int:
    """A uniform 64-bit draw for the rounding event ``(sign, sig, discard)``.

    The significand is folded into the state 64 bits at a time, so
    arbitrary-precision exact values (wide accumulations, division
    stickies) contribute every bit to the draw.
    """
    x = (_SR_KEY
         ^ (discard * 0x9E3779B97F4A7C15)
         ^ (-0x61C8864680B583EB if sign else 0)) & _M64
    while sig:
        x = _mix64(x ^ (sig & _M64))
        sig >>= 64
    return _mix64(x)


def _sr_round_up(sign: int, sig: int, discard: int, dropped: int) -> bool:
    """Stochastic decision: increment with probability dropped/2**discard."""
    draw = _sr_draw(sign, sig, discard)
    if discard <= 64:
        # Scale the draw down to ``discard`` uniform bits: exact
        # probability dropped / 2**discard.
        return dropped > (draw >> (64 - discard))
    # Beyond 64 discarded bits compare the top 64: the probability is
    # correct to within 2**-64, far below any representable epsilon.
    return (dropped >> (discard - 64)) > draw


def _round_up(rm: RoundingMode, sign: int, lsb: int, round_bit: int, sticky: int) -> bool:
    """Decide whether to increment the kept significand.

    Args:
        rm: Operational rounding mode.
        sign: Sign of the value being rounded (1 = negative).
        lsb: Least significant *kept* bit.
        round_bit: The first discarded bit.
        sticky: 1 if any lower discarded bit is non-zero.
    """
    if rm == RoundingMode.RNE:
        return bool(round_bit and (sticky or lsb))
    if rm == RoundingMode.RTZ:
        return False
    if rm == RoundingMode.RDN:
        return bool(sign and (round_bit or sticky))
    if rm == RoundingMode.RUP:
        return bool((not sign) and (round_bit or sticky))
    if rm == RoundingMode.RMM:
        return bool(round_bit)
    raise ValueError(f"cannot round with mode {rm!r}")


def _shift_right_round(
    sig: int, discard: int, rm: RoundingMode, sign: int
) -> Tuple[int, bool]:
    """Shift ``sig`` right by ``discard`` bits, rounding per ``rm``.

    Returns ``(rounded_significand, inexact)``.  ``discard`` may be zero
    or negative (a left shift, which is always exact).
    """
    if discard <= 0:
        return sig << (-discard), False
    kept = sig >> discard
    dropped = sig & ((1 << discard) - 1)
    if dropped == 0:
        return kept, False
    if rm == RoundingMode.SR:
        if _sr_round_up(sign, sig, discard, dropped):
            kept += 1
        return kept, True
    round_bit = (sig >> (discard - 1)) & 1
    sticky = 1 if (dropped & ((1 << (discard - 1)) - 1)) else 0
    if _round_up(rm, sign, kept & 1, round_bit, sticky):
        kept += 1
    return kept, True


def _overflow_result(fmt: FloatFormat, rm: RoundingMode, sign: int) -> int:
    """Pick the overflow result mandated by IEEE 754 for each mode.

    RNE/RMM round to infinity (as does SR: a value past the overflow
    threshold is nearer infinity than any finite value in expectation);
    RTZ saturates at the largest finite value; RDN/RUP saturate in the
    direction that cannot be crossed.
    """
    if rm in (RoundingMode.RNE, RoundingMode.RMM, RoundingMode.SR):
        return fmt.inf(sign)
    if rm == RoundingMode.RTZ:
        return fmt.max_finite_signed(sign)
    if rm == RoundingMode.RDN:
        return fmt.max_finite_signed(sign) if sign == 0 else fmt.neg_inf
    if rm == RoundingMode.RUP:
        return fmt.pos_inf if sign == 0 else fmt.max_finite_signed(sign)
    raise ValueError(f"cannot overflow with mode {rm!r}")


def round_and_pack(
    fmt: FloatFormat, sign: int, sig: int, exp: int, rm: RoundingMode
) -> Tuple[int, int]:
    """Round the exact value ``(-1)**sign * sig * 2**exp`` into ``fmt``.

    This is the single funnel through which every finite arithmetic
    result passes.  ``sig`` must be non-negative; a zero significand
    yields a zero of the given sign.  A caller that truncated lower-order
    bits (division, square root) must have folded a sticky bit into the
    LSB of ``sig`` so that rounding decisions remain correct.

    Returns:
        ``(bits, flags)`` -- the encoded result and the accrued IEEE
        exception flags (some subset of OF, UF, NX).
    """
    if sig < 0:
        raise ValueError("significand must be non-negative")
    if sig == 0:
        return fmt.zero(sign), 0
    # Dispatch through the format's codec: IEEE formats land in
    # ieee_round_and_pack below, guest formats bring their own packer.
    return fmt.round_pack(sign, sig, exp, rm)


def ieee_round_and_pack(
    fmt: FloatFormat, sign: int, sig: int, exp: int, rm: RoundingMode
) -> Tuple[int, int]:
    """Round-and-pack for IEEE-754-style formats (the FloatFormat codec)."""
    p = fmt.precision
    nbits = sig.bit_length()
    # Exponent of the value's most significant bit.
    msb_exp = exp + nbits - 1

    flags = 0

    if msb_exp >= fmt.emin:
        # Normal-range candidate: keep exactly p significand bits.
        rounded, inexact = _shift_right_round(sig, nbits - p, rm, sign)
        exp_out = msb_exp
        if rounded.bit_length() > p:  # rounding carried out, e.g. 0b1111 -> 0b10000
            rounded >>= 1
            exp_out += 1
        if inexact:
            flags |= NX
        if exp_out > fmt.emax:
            return _overflow_result(fmt, rm, sign), flags | OF | NX
        biased = exp_out + fmt.bias
        mantissa = rounded & fmt.man_mask
        bits = (sign << (fmt.width - 1)) | (biased << fmt.man_bits) | mantissa
        return bits, flags

    # ------------------------------------------------------------------
    # Subnormal range: the significand LSB is pinned at 2**(emin - man_bits).
    # ------------------------------------------------------------------
    discard = (fmt.emin - fmt.man_bits) - exp
    rounded, inexact = _shift_right_round(sig, discard, rm, sign)
    if inexact:
        flags |= NX
        # Tininess after rounding: round as if the exponent range were
        # unbounded and check whether the result still lies below the
        # smallest normal.  (RISC-V / IEEE 754-2008 "after rounding".)
        # Only subnormal-range candidates can be tiny, and UF is only
        # raised together with NX, so the check is deferred to here.
        unbounded_sig, _ = _shift_right_round(sig, nbits - p, rm, sign)
        unbounded_msb_exp = msb_exp + (1 if unbounded_sig.bit_length() > p else 0)
        if unbounded_msb_exp < fmt.emin:
            flags |= UF
    if rounded.bit_length() > fmt.man_bits:
        # Rounded up into the smallest normal number.
        bits = (sign << (fmt.width - 1)) | fmt.min_normal
        return bits, flags
    bits = (sign << (fmt.width - 1)) | rounded
    return bits, flags


def resolve_rm(rm: RoundingMode, frm: RoundingMode) -> RoundingMode:
    """Resolve an instruction rounding mode against ``fcsr.frm``.

    ``DYN`` defers to the CSR; anything else is taken verbatim.  An
    invalid dynamic mode raises, mirroring the illegal-instruction trap
    hardware would take.
    """
    mode = frm if rm == RoundingMode.DYN else rm
    if mode not in OPERATIONAL_MODES:
        raise ValueError(f"reserved rounding mode {mode!r}")
    return mode
