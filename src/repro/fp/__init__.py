"""Bit-exact smallFloat arithmetic (the paper's transprecision FPU).

Public surface:

* Formats: :data:`BINARY8`, :data:`BINARY16`, :data:`BINARY16ALT`,
  :data:`BINARY32`, :data:`BINARY64`, :func:`lookup`,
  :func:`vector_lanes`, :func:`supported_vector_formats` (Table II).
* Scalar ops: :mod:`repro.fp.arith`, :mod:`repro.fp.compare`,
  :mod:`repro.fp.convert` -- each returns ``(bits, fflags)``.
* Packed SIMD (Xfvec/Xfaux): :mod:`repro.fp.simd`.
* Ergonomic values: :class:`SmallFloat`.
* Fast emulation: :mod:`repro.fp.numpy_backend` (FlexFloat substitute).
* Format registry: :mod:`repro.fp.registry` -- the pluggable
  :class:`NumberFormat` protocol; :mod:`repro.fp.posit` (Xposit) and
  :mod:`repro.fp.mx` (Xmx8) are the first guest codec families and
  self-register on import below.
"""

from . import arith, compare, convert, numpy_backend, registry, simd
from . import mx, posit  # noqa: F401  (self-registering guest formats)
from .flags import DZ, NV, NX, OF, UF, flag_names, format_flags
from .formats import (
    BINARY8,
    BINARY16,
    BINARY16ALT,
    BINARY32,
    BINARY64,
    FORMATS,
    SMALLFLOAT_FORMATS,
    FloatFormat,
    lookup,
    supported_vector_formats,
    vector_lanes,
)
from .rounding import RoundingMode, round_and_pack
from .unpacked import Kind, Unpacked, unpack
from .value import SmallFloat

from .mx import MX8
from .posit import POSIT8, POSIT16
from .registry import NumberFormat

__all__ = [
    "arith",
    "compare",
    "convert",
    "numpy_backend",
    "registry",
    "posit",
    "mx",
    "NumberFormat",
    "POSIT8",
    "POSIT16",
    "MX8",
    "simd",
    "NV",
    "DZ",
    "OF",
    "UF",
    "NX",
    "flag_names",
    "format_flags",
    "BINARY8",
    "BINARY16",
    "BINARY16ALT",
    "BINARY32",
    "BINARY64",
    "FORMATS",
    "SMALLFLOAT_FORMATS",
    "FloatFormat",
    "lookup",
    "supported_vector_formats",
    "vector_lanes",
    "RoundingMode",
    "round_and_pack",
    "Kind",
    "Unpacked",
    "unpack",
    "SmallFloat",
]
