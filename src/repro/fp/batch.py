"""Batch-axis vectorized smallFloat arithmetic with exact IEEE flags.

The lockstep engine (:mod:`repro.sim.lockstep`) executes one guest
instruction for N sweep points at once.  For the IEEE formats under
round-to-nearest-even -- the overwhelmingly dominant configuration of
every paper sweep -- this module computes the whole batch with a few
numpy operations while staying *bit-identical* to the softfloat core
(:mod:`repro.fp.arith`), flags included.

Correctness sketch (all arrays are binary64):

* Operands decode exactly: every smallFloat value is a binary64 value
  (p <= 24 << 53).  Products of two p-bit values are exact in binary64
  (2p <= 48).  Sums are captured exactly as a TwoSum pair ``(s, e)``
  with ``s = RN(a + b)`` and ``a + b = s + e``.
* The final rounding must be a *single* rounding of the exact value
  ``s + e`` to the target format.  Rounding s directly would double
  round, so ``s`` is first adjusted to *round-to-odd* (if ``e != 0``
  and s's last bit is even, nudge s one ulp toward e).  By the standard
  round-to-odd theorem, RNE_p(odd_q(x)) == RNE_p(x) for q >= 2p + 2;
  binary64 (53 bits) qualifies for every target here.  The two formats
  numpy cannot cast to directly (binary16alt, binary8) chain through an
  intermediate round-to-odd at binary32/binary16 -- legal because the
  intermediate keeps >= p + 2 bits and shares the target's emin, so
  subnormal grids align.
* Flags: NX  iff the exact value was not representable, i.e.
  ``e != 0 or decode(result) != s``.  OF iff the rounded result is
  infinite while the exact value is finite.  UF follows the RISC-V
  tininess-after-rounding rule: tiny iff |exact| < 2^emin *
  (1 - 2^-(p+1)) (the point below which unbounded-range rounding stays
  under 2^emin), decided exactly from ``(s, e)``; UF is raised only
  together with NX.
* Anything this module cannot prove exact falls back: operations on
  NaN/infinity operands, non-RNE rounding, non-IEEE guest formats, and
  dot products whose accumulation leaves the double-double window.
  Callers re-run those lanes through the scalar core.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from .flags import NV, OF, UF, NX
from .formats import FloatFormat
from .numpy_backend import from_bits

#: Formats with a vectorized batch path (IEEE layouts only; guest
#: formats such as posit/MX always take the per-element codec path).
_SUPPORTED = ("binary32", "binary16", "binary16alt", "binary8")

_U32 = np.uint32
_U64 = np.uint64


_suppressed = 0


class quiet_errors:
    """Silence invalid/overflow FP warnings for a whole region.

    The lockstep engine enters this once per run so the per-op
    ``np.errstate`` context (a measurable per-call cost at batch sizes
    of a few dozen) collapses to a no-op flag check."""

    def __enter__(self):
        global _suppressed
        if _suppressed == 0:
            self._old = np.seterr(invalid="ignore", over="ignore")
        else:
            self._old = None
        _suppressed += 1
        return self

    def __exit__(self, *exc):
        global _suppressed
        _suppressed -= 1
        if self._old is not None:
            np.seterr(**self._old)
        return False


def _quiet(fn):
    """Silence invalid/overflow warnings: NaN and infinity lanes flow
    through the vector arithmetic as placeholders before the fallback
    mask routes them to the scalar core."""

    def wrapper(*args, **kwargs):
        if _suppressed:
            return fn(*args, **kwargs)
        with np.errstate(invalid="ignore", over="ignore"):
            return fn(*args, **kwargs)

    wrapper.__name__ = fn.__name__
    wrapper.__doc__ = fn.__doc__
    return wrapper


def batchable(fmt: FloatFormat) -> bool:
    """True when ``fmt`` has a vectorized RNE fast path."""
    return getattr(fmt, "ieee", True) and fmt.name in _SUPPORTED


# ----------------------------------------------------------------------
# Exact decode
# ----------------------------------------------------------------------
_TABLES: Dict[str, np.ndarray] = {}


def _table(fmt: FloatFormat) -> np.ndarray:
    """Bit pattern -> exact binary64 value, for widths <= 16."""
    table = _TABLES.get(fmt.name)
    if table is None:
        table = from_bits(np.arange(1 << fmt.width, dtype=np.uint64), fmt)
        table.setflags(write=False)
        _TABLES[fmt.name] = table
    return table


@_quiet
def decode(fmt: FloatFormat, bits: np.ndarray) -> np.ndarray:
    """Exact binary64 values of packed ``fmt`` bit patterns."""
    if fmt.width == 32:
        if bits.dtype != np.uint32 or not bits.flags.c_contiguous:
            bits = np.ascontiguousarray(bits, dtype=np.uint32)
        return bits.view(np.float32).astype(np.float64)
    return _table(fmt)[bits]


# ----------------------------------------------------------------------
# Round-to-odd helpers
# ----------------------------------------------------------------------
def _cast(v: np.ndarray, dtype) -> np.ndarray:
    """``astype`` with overflow warnings silenced (cheap when a
    :class:`quiet_errors` region is already active)."""
    if _suppressed:
        return v.astype(dtype)
    with np.errstate(over="ignore"):
        return v.astype(dtype)


def _odd_fix64(s: np.ndarray, e: np.ndarray) -> np.ndarray:
    """Adjust ``s = RN(x)`` so RNE-rounding it equals RNE-rounding x.

    ``x = s + e`` exactly.  Where the residual is non-zero and s's last
    significand bit is even, nudge s one binary64 ulp toward the
    residual (round-to-odd).
    """
    fix = (e != 0) & ((s.view(_U64) & _U64(1)) == 0)
    if not fix.any():
        return s
    direction = np.where(e > 0, np.inf, -np.inf)
    return np.where(fix, np.nextafter(s, direction), s)


def _odd_cast(v: np.ndarray, dtype) -> np.ndarray:
    """Round-to-odd cast of finite binary64 values to f32/f16.

    Never yields an infinity for finite input: an overflowing cast is
    pulled back to the (odd-mantissa) largest finite value, preserving
    every downstream RNE decision including overflow-to-infinity.
    """
    f = _cast(v, dtype)
    back = f.astype(np.float64)
    inexact = back != v
    if inexact.any():
        u = f.view({np.dtype(np.float32): _U32,
                    np.dtype(np.float16): np.uint16}[f.dtype])
        fix = inexact & ((u & type(u[0])(1)) == 0)
        if fix.any():
            direction = np.where(v > back, dtype(np.inf), dtype(-np.inf))
            f = np.where(fix, np.nextafter(f, direction), f)
    return f


# ----------------------------------------------------------------------
# Encoders: binary64 (already round-to-odd adjusted) -> (bits, value)
# ----------------------------------------------------------------------
def _encode_b32(v: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    f = _cast(v, np.float32)
    return f.view(_U32).astype(_U32), f.astype(np.float64)


def _encode_b16(v: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    f = _cast(v, np.float16)
    return f.view(np.uint16).astype(_U32), f.astype(np.float64)


def _encode_b16alt(v: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    # Through round-to-odd binary32 (same emin; 24 >= 8 + 2 bits), then
    # the classic carry-propagating RNE truncation of the low 16 bits.
    b = _odd_cast(v, np.float32).view(_U32)
    r = (b + _U32(0x7FFF) + ((b >> _U32(16)) & _U32(1))) >> _U32(16)
    return r, (r << _U32(16)).view(np.float32).astype(np.float64)


def _encode_b8(v: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    # Through round-to-odd binary16 (same emin; 11 >= 3 + 2 bits).
    b = _odd_cast(v, np.float16).view(np.uint16).astype(_U32)
    r = (b + _U32(0x7F) + ((b >> _U32(8)) & _U32(1))) >> _U32(8)
    return r, _TABLES["binary8"][r]


_ENCODERS = {
    "binary32": _encode_b32,
    "binary16": _encode_b16,
    "binary16alt": _encode_b16alt,
    "binary8": _encode_b8,
}

#: Underflow-tininess thresholds: |exact| < 2^emin * (1 - 2^-(p+1))
#: means unbounded-range RNE stays below the smallest normal.
_TINY: Dict[str, float] = {}


def _tiny_threshold(fmt: FloatFormat) -> float:
    t = _TINY.get(fmt.name)
    if t is None:
        t = float(np.ldexp(1.0 - 2.0 ** -(fmt.precision + 1), fmt.emin))
        _TINY[fmt.name] = t
    return t


def _finish(fmt: FloatFormat, s: np.ndarray, e) -> Tuple[np.ndarray, np.ndarray]:
    """Round the exact value ``s + e`` into ``fmt`` with exact flags.

    ``s`` must be the binary64 RN of the exact value and ``e`` the exact
    residual (``None`` means exact-in-binary64, e.g. products).  Inputs
    must be finite; non-finite lanes are the caller's fallback problem.
    Returns ``(bits, flags)`` as uint32/uint8 arrays.
    """
    if fmt.width == 8:
        _table(fmt)  # _encode_b8 indexes the table directly
    v = s if e is None else _odd_fix64(s, e)
    bits, q = _ENCODERS[fmt.name](v)
    inexact = q != s
    if e is not None:
        inexact = inexact | (e != 0)
    flags = inexact.astype(np.uint8) * np.uint8(NX)
    overflow = np.isinf(q)
    if overflow.any():
        flags = flags | overflow.astype(np.uint8) * np.uint8(OF)
    mag = np.abs(s)
    tiny = mag < _tiny_threshold(fmt)
    if e is not None:
        tiny = tiny | ((mag == _tiny_threshold(fmt)) & (e != 0)
                       & (np.signbit(e) != np.signbit(s)))
    underflow = inexact & tiny
    if underflow.any():
        flags = flags | underflow.astype(np.uint8) * np.uint8(UF)
    return bits, flags


def _two_sum(a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Knuth's exact TwoSum: a + b == s + e with s = RN(a + b)."""
    s = a + b
    bv = s - a
    e = (a - (s - bv)) + (b - bv)
    return s, e


# ----------------------------------------------------------------------
# Batched operations.  All take/return uint32 bit-pattern arrays and
# return ``(bits, flags, fallback)``: lanes in ``fallback`` must be
# recomputed through the scalar core (the vector results there are
# placeholders).
# ----------------------------------------------------------------------
@_quiet
def add(fmt: FloatFormat, a: np.ndarray, b: np.ndarray,
        sub: bool = False) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    a64 = decode(fmt, a)
    b64 = decode(fmt, b)
    if sub:
        b64 = -b64
    fallback = ~(np.isfinite(a64) & np.isfinite(b64))
    s, e = _two_sum(a64, b64)
    if fallback.any():  # keep the finisher warning-free
        s = np.where(fallback, 0.0, s)
        e = np.where(fallback, 0.0, e)
    bits, flags = _finish(fmt, s, e)
    return bits, flags, fallback


@_quiet
def mul(fmt: FloatFormat, a: np.ndarray, b: np.ndarray,
        src: FloatFormat = None) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``a * b`` rounded into ``fmt``; ``src`` (default ``fmt``) is the
    operand format -- a narrower ``src`` models fmulex."""
    opfmt = src or fmt
    a64 = decode(opfmt, a)
    b64 = decode(opfmt, b)
    fallback = ~(np.isfinite(a64) & np.isfinite(b64))
    s = a64 * b64  # exact: 2p <= 48 bits
    if fallback.any():
        s = np.where(fallback, 0.0, s)
    bits, flags = _finish(fmt, s, None)
    return bits, flags, fallback


@_quiet
def fma(fmt: FloatFormat, a: np.ndarray, b: np.ndarray, c: np.ndarray,
        negate_product: bool = False, negate_addend: bool = False,
        src: FloatFormat = None) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fused multiply-add ``(-1)^np * a*b + (-1)^na * c`` (one rounding).

    ``src`` (default ``fmt``) is the format of ``a``/``b``; a narrower
    ``src`` models the expanding fmacex, whose product stays exact in
    binary64 just the same (2 * p_src <= 48)."""
    opfmt = src or fmt
    a64 = decode(opfmt, a)
    b64 = decode(opfmt, b)
    c64 = decode(fmt, c)
    fallback = ~(np.isfinite(a64) & np.isfinite(b64) & np.isfinite(c64))
    prod = a64 * b64  # exact
    if negate_product:
        prod = -prod
    if negate_addend:
        c64 = -c64
    s, e = _two_sum(prod, c64)
    if fallback.any():
        s = np.where(fallback, 0.0, s)
        e = np.where(fallback, 0.0, e)
    bits, flags = _finish(fmt, s, e)
    return bits, flags, fallback


@_quiet
def cvt(src: FloatFormat, dst: FloatFormat,
        a: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Format conversion (fcvt.f2f): exact value, one rounding."""
    a64 = decode(src, a)
    fallback = ~np.isfinite(a64)
    s = a64
    if fallback.any():
        s = np.where(fallback, 0.0, s)
    bits, flags = _finish(dst, s, None)
    return bits, flags, fallback


def _signaling(fmt: FloatFormat, bits: np.ndarray,
               nan: np.ndarray) -> np.ndarray:
    quiet_bit = _U32(1 << (fmt.man_bits - 1))
    return nan & ((bits.astype(_U32) & quiet_bit) == 0)


@_quiet
def cmp(fmt: FloatFormat, op: str, a: np.ndarray,
        b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """feq/flt/fle across the batch.  No fallback lanes: NaN semantics
    are computed exactly (quiet compare for eq, signaling for lt/le)."""
    a64 = decode(fmt, a)
    b64 = decode(fmt, b)
    a_nan = np.isnan(a64)
    b_nan = np.isnan(b64)
    if op == "eq":
        result = a64 == b64
        invalid = _signaling(fmt, a, a_nan) | _signaling(fmt, b, b_nan)
    elif op == "lt":
        result = a64 < b64
        invalid = a_nan | b_nan
    else:  # "le"
        result = a64 <= b64
        invalid = a_nan | b_nan
    return result.astype(_U32), invalid.astype(np.uint8) * np.uint8(NV)


@_quiet
def dotp(src: FloatFormat, dst: FloatFormat, acc: np.ndarray,
         a_lanes: List[np.ndarray], b_lanes: List[np.ndarray],
         ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """vfdotpex.s.*: exact expanding dot product with one dst rounding.

    The exact accumulation is tracked as a double-double ``(hi, lo)``
    grown with TwoSum; any lane whose accumulation sheds a bit past the
    106-bit window (or touches a non-finite value, or sums to exactly
    zero, whose sign needs the scalar core's rule) is marked fallback.
    """
    hi = decode(dst, acc)
    ok = np.isfinite(hi)
    lo = np.zeros_like(hi)
    exact = np.ones(hi.shape, dtype=bool)
    for a_bits, b_bits in zip(a_lanes, b_lanes):
        a64 = decode(src, a_bits)
        b64 = decode(src, b_bits)
        ok &= np.isfinite(a64) & np.isfinite(b64)
        term = a64 * b64  # exact: 2p <= 22 bits
        sh, eh = _two_sum(hi, term)
        sl, el = _two_sum(lo, eh)
        exact &= el == 0
        hi, lo = _two_sum(sh, sl)  # renormalize, exactly
    fallback = ~ok | ~exact | (hi == 0.0)
    if fallback.any():
        hi = np.where(fallback, 0.0, hi)
        lo = np.where(fallback, 0.0, lo)
    bits, flags = _finish(dst, hi, lo)
    return bits, flags, fallback
