"""IEEE 754 exception flags, laid out as in the RISC-V ``fflags`` CSR.

The RISC-V ``fflags`` register packs the five accrued exception flags as

    bit 4: NV (invalid operation)
    bit 3: DZ (divide by zero)
    bit 2: OF (overflow)
    bit 1: UF (underflow)
    bit 0: NX (inexact)

Every operation in :mod:`repro.fp` returns a flag mask using these
constants; the simulator ORs them into the ``fcsr`` CSR.
"""

from __future__ import annotations

from typing import List

#: Invalid operation (e.g. 0 * inf, sqrt of a negative, signaling NaN).
NV = 0b10000
#: Division by zero (finite / 0).
DZ = 0b01000
#: Overflow (result rounded beyond the largest finite value).
OF = 0b00100
#: Underflow (tiny after rounding *and* inexact, per RISC-V).
UF = 0b00010
#: Inexact (result had to be rounded).
NX = 0b00001

#: Every flag at once (the mask of valid fflags bits).
ALL = NV | DZ | OF | UF | NX

_NAMES = [(NV, "NV"), (DZ, "DZ"), (OF, "OF"), (UF, "UF"), (NX, "NX")]


def flag_names(mask: int) -> List[str]:
    """Decode a flag mask into mnemonic names, MSB first.

    >>> flag_names(NV | NX)
    ['NV', 'NX']
    >>> flag_names(0)
    []
    """
    return [name for bit, name in _NAMES if mask & bit]


def format_flags(mask: int) -> str:
    """Human-readable rendering of a flag mask (``"NV|NX"`` or ``"-"``)."""
    names = flag_names(mask)
    return "|".join(names) if names else "-"
