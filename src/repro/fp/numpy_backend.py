"""Fast vectorized smallFloat emulation (the FlexFloat substitute).

The paper's QoR table (Table III) and the precision-tuning case study
(Section V-C) require running kernels under many candidate precisions.
Driving the bit-exact softfloat core element by element would be
needlessly slow for that purpose, so this module provides a vectorized
numpy backend that represents smallFloat values as *format-representable
binary64 numbers* and quantizes after every operation.

Correctness argument: binary64 carries 53 significand bits, which is at
least ``2p + 2`` for every emulated format (p = 24 for binary32, 11 for
binary16, 8 for binary16alt, 3 for binary8).  By the classical innocuous
double-rounding theorem, computing +, -, *, /, sqrt in binary64 over
format-representable operands and rounding the binary64 result to the
format yields exactly the correctly rounded format result.  The
test-suite cross-checks this backend against the softfloat core.

Only round-to-nearest-even is vectorized; other modes take a per-element
path through the softfloat core (they only appear in directed tests).
"""

from __future__ import annotations

from typing import Union

import numpy as np

from .convert import from_double, to_double
from .formats import FloatFormat
from .rounding import RoundingMode

ArrayLike = Union[np.ndarray, float, int]


def _as_f64(x: ArrayLike) -> np.ndarray:
    return np.asarray(x, dtype=np.float64)


def quantize(
    x: ArrayLike, fmt: FloatFormat, rm: RoundingMode = RoundingMode.RNE
) -> np.ndarray:
    """Round binary64 values to the nearest ``fmt`` value (as binary64).

    NaNs stay NaN, infinities keep their sign, and overflow follows the
    IEEE rule for the rounding mode (to infinity under RNE).
    """
    arr = _as_f64(x)
    if fmt.name == "binary64":
        return arr.copy()
    if rm != RoundingMode.RNE or not getattr(fmt, "ieee", True):
        # Directed rounding modes and non-IEEE guest formats (posit,
        # MX8) take the bit-exact per-element path through the codec.
        flat = np.array(
            [to_double(from_double(float(v), fmt, rm), fmt) for v in arr.ravel()],
            dtype=np.float64,
        )
        return flat.reshape(arr.shape)

    # ``view`` needs a contiguous last axis; copy only when it isn't.
    if not arr.flags.c_contiguous:
        arr = np.ascontiguousarray(arr)
    bits = arr.view(np.uint64)
    sign = bits >> np.uint64(63)
    exp_field = (bits >> np.uint64(52)) & np.uint64(0x7FF)
    man_field = bits & np.uint64((1 << 52) - 1)

    is_nan = (exp_field == 0x7FF) & (man_field != 0)
    is_inf = (exp_field == 0x7FF) & (man_field == 0)
    is_zero = (exp_field == 0) & (man_field == 0)

    # Unbiased exponent; binary64 subnormal inputs are far below every
    # emulated format's range, treat them with the minimum exponent.
    e = exp_field.astype(np.int64) - 1023
    e = np.where(exp_field == 0, np.int64(-1022), e)
    # 53-bit significand including the hidden bit (absent for f64 subnormals).
    m = np.where(
        exp_field == 0, man_field, man_field | np.uint64(1 << 52)
    ).astype(np.uint64)

    # Bits to discard: normal numbers lose (52 - man_bits); values below
    # the format's normal range lose extra bits (gradual underflow).
    shift = np.full(arr.shape, 52 - fmt.man_bits, dtype=np.int64)
    below = e < fmt.emin
    shift = np.where(below, shift + (fmt.emin - e), shift)
    # m < 2**53, so any shift beyond 55 behaves identically to 55
    # (result rounds to zero, and ties cannot occur).
    shift = np.minimum(shift, np.int64(55)).astype(np.uint64)

    half = np.uint64(1) << (shift - np.uint64(1))
    lsb = (m >> shift) & np.uint64(1)
    rounded = (m + half - np.uint64(1) + lsb) >> shift

    # Reconstruct: value = rounded * 2**(e - (52 - shift)).
    exp_of_lsb = e - 52 + shift.astype(np.int64)
    with np.errstate(over="ignore"):  # beyond-range values become inf below
        magnitude = np.ldexp(rounded.astype(np.float64), exp_of_lsb.astype(np.int32))

    # Overflow to infinity (RNE rounds past max_finite straight to inf).
    magnitude = np.where(magnitude > fmt.max_value, np.inf, magnitude)

    out = np.where(sign == 1, -magnitude, magnitude)
    out = np.where(is_zero, np.where(sign == 1, -0.0, 0.0), out)
    out = np.where(is_inf, np.where(sign == 1, -np.inf, np.inf), out)
    out = np.where(is_nan, np.nan, out)
    return out


def representable(x: ArrayLike, fmt: FloatFormat) -> np.ndarray:
    """Boolean mask: which binary64 values are exact ``fmt`` values."""
    arr = _as_f64(x)
    q = quantize(arr, fmt)
    return (q == arr) | np.isnan(arr)


def to_bits(x: ArrayLike, fmt: FloatFormat) -> np.ndarray:
    """Encode format-representable binary64 values into bit patterns.

    Values are quantized first, so arbitrary binary64 inputs are
    accepted; NaNs encode to the canonical quiet NaN.
    """
    arr = quantize(x, fmt)
    if fmt.name == "binary64":
        return arr.view(np.uint64).copy()
    if not getattr(fmt, "ieee", True):
        # Guest formats have no IEEE field layout: encode per element.
        flat = np.array([from_double(float(v), fmt, RoundingMode.RNE)
                         for v in arr.ravel()], dtype=np.uint64)
        return flat.reshape(arr.shape)
    out = np.zeros(arr.shape, dtype=np.uint64)
    sign = np.signbit(arr).astype(np.uint64) << np.uint64(fmt.width - 1)

    nan = np.isnan(arr)
    inf = np.isinf(arr)
    mag = np.abs(arr)
    finite = ~(nan | inf)

    safe_mag = np.where(finite, mag, 0.0)  # keep casts below warning-free
    mantissa2, exponent = np.frexp(safe_mag)  # mag = mantissa2 * 2**exponent
    e = exponent.astype(np.int64) - 1  # unbiased exponent of the value
    normal = finite & (mag != 0) & (e >= fmt.emin)
    subnormal = finite & (mag != 0) & (e < fmt.emin)
    mag = safe_mag

    # Normal: mantissa field = (mag / 2**e - 1) * 2**man_bits (exact).
    man_norm = np.where(
        normal,
        np.rint(np.ldexp(mantissa2, fmt.man_bits + 1)).astype(np.int64)
        - (1 << fmt.man_bits),
        0,
    )
    biased = np.where(normal, e + fmt.bias, 0).astype(np.int64)
    # Subnormal: mantissa field = mag / 2**(emin - man_bits) (exact).
    sub_mag = np.where(subnormal, mag, 0.0)  # avoid overflow in ldexp below
    man_sub = np.where(
        subnormal,
        np.rint(np.ldexp(sub_mag, fmt.man_bits - fmt.emin)).astype(np.int64),
        0,
    )

    out |= np.where(normal, (biased << fmt.man_bits) | man_norm, 0).astype(np.uint64)
    out |= np.where(subnormal, man_sub, 0).astype(np.uint64)
    out |= np.where(inf, np.int64(fmt.pos_inf), 0).astype(np.uint64)
    out |= sign
    out = np.where(nan, np.uint64(fmt.quiet_nan), out)
    return out


def from_bits(bits: ArrayLike, fmt: FloatFormat) -> np.ndarray:
    """Decode bit patterns into binary64 values (exact)."""
    b = np.asarray(bits, dtype=np.uint64)
    if fmt.name == "binary64":
        return b.view(np.float64).copy()
    if not getattr(fmt, "ieee", True):
        flat = np.array([to_double(int(v), fmt) for v in b.ravel()],
                        dtype=np.float64)
        return flat.reshape(b.shape)
    sign = ((b >> np.uint64(fmt.width - 1)) & np.uint64(1)).astype(np.int64)
    exp_field = ((b >> np.uint64(fmt.man_bits)) & np.uint64(fmt.exp_mask)).astype(
        np.int64
    )
    man_field = (b & np.uint64(fmt.man_mask)).astype(np.int64)

    subnormal_val = np.ldexp(man_field.astype(np.float64), fmt.emin - fmt.man_bits)
    normal_val = np.ldexp(
        (man_field + (1 << fmt.man_bits)).astype(np.float64),
        (exp_field - fmt.bias - fmt.man_bits).astype(np.int32),
    )
    out = np.where(exp_field == 0, subnormal_val, normal_val)
    out = np.where((exp_field == fmt.exp_mask) & (man_field == 0), np.inf, out)
    out = np.where((exp_field == fmt.exp_mask) & (man_field != 0), np.nan, out)
    return np.where(sign == 1, -out, out)


class Emulator:
    """Array arithmetic in a fixed format (quantize after every op).

    All inputs are quantized on the way in, so callers may pass plain
    binary64 data.  This models a processor whose every FP instruction
    operates in ``fmt`` -- precisely what the paper's type-substitution
    experiments do to whole kernels.
    """

    def __init__(self, fmt: FloatFormat):
        self.fmt = fmt

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Emulator({self.fmt.name})"

    def value(self, x: ArrayLike) -> np.ndarray:
        """Quantize input data into the emulated format."""
        return quantize(x, self.fmt)

    def add(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        return quantize(self.value(a) + self.value(b), self.fmt)

    def sub(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        return quantize(self.value(a) - self.value(b), self.fmt)

    def mul(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        return quantize(self.value(a) * self.value(b), self.fmt)

    def div(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            return quantize(self.value(a) / self.value(b), self.fmt)

    def sqrt(self, a: ArrayLike) -> np.ndarray:
        with np.errstate(invalid="ignore"):
            return quantize(np.sqrt(self.value(a)), self.fmt)

    def fma(self, a: ArrayLike, b: ArrayLike, c: ArrayLike) -> np.ndarray:
        """Fused multiply-add (exact for the sub-32-bit formats).

        The binary64 product of two values with p <= 24 significand bits
        is exact, so quantizing ``a * b + c`` performs a single rounding.
        """
        return quantize(self.value(a) * self.value(b) + self.value(c), self.fmt)

    def dot(self, a: ArrayLike, b: ArrayLike, acc_fmt: "FloatFormat" = None) -> float:
        """Sequential dot product with a format-quantized accumulator.

        ``acc_fmt`` models the Xfaux expanding accumulation: products in
        ``self.fmt``, accumulation in a (usually wider) format.
        """
        acc_fmt = acc_fmt or self.fmt
        av, bv = self.value(a).ravel(), self.value(b).ravel()
        acc = 0.0
        for x, y in zip(av, bv):
            prod = float(quantize(x * y, self.fmt))
            acc = float(quantize(acc + prod, acc_fmt))
        return acc
