"""Comparisons, min/max, classification and sign injection.

Semantics follow the RISC-V "F" extension, which the smallFloat scalar
extensions mirror per format (paper Section III-A):

* ``feq`` is a *quiet* comparison (quiet NaNs compare unordered without
  raising NV); ``flt``/``fle`` are *signaling* (any NaN raises NV).
* ``fmin``/``fmax`` return the non-NaN operand when exactly one operand
  is NaN, the canonical NaN when both are, and treat -0 as less than +0.
* ``fclass`` produces the 10-bit classification mask.
* ``fsgnj``/``fsgnjn``/``fsgnjx`` are pure bit manipulations.
"""

from __future__ import annotations

from typing import Tuple

from .flags import NV
from .formats import FloatFormat
from .unpacked import Unpacked, unpack

Result = Tuple[int, int]


def _magnitude_cmp(a: Unpacked, b: Unpacked) -> int:
    """Compare |a| and |b| for finite non-zero values: -1, 0 or +1."""
    common = min(a.exp, b.exp)
    ma = a.sig << (a.exp - common)
    mb = b.sig << (b.exp - common)
    return (ma > mb) - (ma < mb)


def _ordered_cmp(a: Unpacked, b: Unpacked) -> int:
    """Compare two non-NaN values: -1, 0 or +1.  Zeros compare equal."""
    if a.is_zero and b.is_zero:
        return 0
    if a.is_zero:
        return 1 if b.sign else -1
    if b.is_zero:
        return -1 if a.sign else 1
    if a.sign != b.sign:
        return -1 if a.sign else 1
    if a.is_inf and b.is_inf:
        return 0
    if a.is_inf:
        return -1 if a.sign else 1
    if b.is_inf:
        return 1 if b.sign else -1
    mag = _magnitude_cmp(a, b)
    return -mag if a.sign else mag


def feq(fmt: FloatFormat, a: int, b: int) -> Result:
    """Quiet equality: result is 0/1 in an integer register."""
    ua, ub = unpack(a, fmt), unpack(b, fmt)
    if ua.is_nan or ub.is_nan:
        flags = NV if (ua.is_snan or ub.is_snan) else 0
        return 0, flags
    return int(_ordered_cmp(ua, ub) == 0), 0


def flt(fmt: FloatFormat, a: int, b: int) -> Result:
    """Signaling less-than."""
    ua, ub = unpack(a, fmt), unpack(b, fmt)
    if ua.is_nan or ub.is_nan:
        return 0, NV
    return int(_ordered_cmp(ua, ub) < 0), 0


def fle(fmt: FloatFormat, a: int, b: int) -> Result:
    """Signaling less-or-equal."""
    ua, ub = unpack(a, fmt), unpack(b, fmt)
    if ua.is_nan or ub.is_nan:
        return 0, NV
    return int(_ordered_cmp(ua, ub) <= 0), 0


def _minmax(fmt: FloatFormat, a: int, b: int, pick_max: bool) -> Result:
    ua, ub = unpack(a, fmt), unpack(b, fmt)
    flags = NV if (ua.is_snan or ub.is_snan) else 0
    if ua.is_nan and ub.is_nan:
        return fmt.quiet_nan, flags
    if ua.is_nan:
        return b, flags
    if ub.is_nan:
        return a, flags
    # -0 orders below +0 for min/max purposes.
    if ua.is_zero and ub.is_zero and ua.sign != ub.sign:
        want_neg = not pick_max
        return (a if (ua.sign == 1) == want_neg else b), flags
    cmp = _ordered_cmp(ua, ub)
    if pick_max:
        return (a if cmp >= 0 else b), flags
    return (a if cmp <= 0 else b), flags


def fmin(fmt: FloatFormat, a: int, b: int) -> Result:
    """IEEE 754 minNum with RISC-V NaN handling."""
    return _minmax(fmt, a, b, pick_max=False)


def fmax(fmt: FloatFormat, a: int, b: int) -> Result:
    """IEEE 754 maxNum with RISC-V NaN handling."""
    return _minmax(fmt, a, b, pick_max=True)


# ----------------------------------------------------------------------
# Classification (fclass)
# ----------------------------------------------------------------------
# The class-mask constants live in the registry module (guest codecs
# need them to implement classify()); re-exported here for backwards
# compatibility with existing importers.
from .registry import (  # noqa: E402
    CLASS_NEG_INF,
    CLASS_NEG_NORMAL,
    CLASS_NEG_SUBNORMAL,
    CLASS_NEG_ZERO,
    CLASS_POS_INF,
    CLASS_POS_NORMAL,
    CLASS_POS_SUBNORMAL,
    CLASS_POS_ZERO,
    CLASS_QNAN,
    CLASS_SNAN,
)

__all__ = [
    "CLASS_NEG_INF", "CLASS_NEG_NORMAL", "CLASS_NEG_SUBNORMAL",
    "CLASS_NEG_ZERO", "CLASS_POS_ZERO", "CLASS_POS_SUBNORMAL",
    "CLASS_POS_NORMAL", "CLASS_POS_INF", "CLASS_SNAN", "CLASS_QNAN",
    "feq", "flt", "fle", "fmin", "fmax", "fclass",
    "fsgnj", "fsgnjn", "fsgnjx",
]


def fclass(fmt: FloatFormat, a: int) -> int:
    """The RISC-V ``fclass`` 10-bit one-hot classification mask."""
    return fmt.classify(a)


# ----------------------------------------------------------------------
# Sign injection
# ----------------------------------------------------------------------
def fsgnj(fmt: FloatFormat, a: int, b: int) -> int:
    """Copy ``b``'s sign onto ``a``'s magnitude (also fmv when a == b)."""
    return fmt.with_sign(a, fmt.sign_of(b))


def fsgnjn(fmt: FloatFormat, a: int, b: int) -> int:
    """Copy the negation of ``b``'s sign (fneg when a == b)."""
    return fmt.with_sign(a, 1 - fmt.sign_of(b))


def fsgnjx(fmt: FloatFormat, a: int, b: int) -> int:
    """XOR the signs (fabs when a == b has a cleared sign... fabs uses b=a)."""
    return fmt.with_sign(a, fmt.sign_of(a) ^ fmt.sign_of(b))
