"""Codec between bit patterns and exact unpacked floating-point values.

An :class:`Unpacked` value classifies a bit pattern and, for finite
values, carries the *exact* value as ``(-1)**sign * sig * 2**exp`` with
an arbitrary-precision integer significand.  This representation lets
the arithmetic core (:mod:`repro.fp.arith`) compute exactly and round
once at the end.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Tuple

from .formats import FloatFormat


class Kind(enum.Enum):
    """Classification of a floating-point datum."""

    ZERO = "zero"
    FINITE = "finite"  # normal or subnormal, non-zero
    INF = "inf"
    NAN = "nan"


@dataclass(frozen=True)
class Unpacked:
    """A decoded floating-point value.

    For ``FINITE`` values, ``value == (-1)**sign * sig * 2**exp`` with
    ``sig > 0``.  For the other kinds only ``sign`` (and for NaNs
    ``signaling``) is meaningful.
    """

    kind: Kind
    sign: int = 0
    sig: int = 0
    exp: int = 0
    signaling: bool = False

    # Convenience predicates, precomputed: the arithmetic core checks
    # these on every operand of every operation, so they are plain
    # attributes rather than properties.  Construction is rare (unpack
    # results are memoized), reads are hot.
    is_nan: bool = field(init=False, repr=False, compare=False, default=False)
    is_snan: bool = field(init=False, repr=False, compare=False, default=False)
    is_inf: bool = field(init=False, repr=False, compare=False, default=False)
    is_zero: bool = field(init=False, repr=False, compare=False, default=False)
    is_finite: bool = field(init=False, repr=False, compare=False, default=False)

    def __post_init__(self) -> None:
        set_ = object.__setattr__  # frozen dataclass
        kind = self.kind
        set_(self, "is_nan", kind is Kind.NAN)
        set_(self, "is_snan", kind is Kind.NAN and self.signaling)
        set_(self, "is_inf", kind is Kind.INF)
        set_(self, "is_zero", kind is Kind.ZERO)
        set_(self, "is_finite", kind is Kind.ZERO or kind is Kind.FINITE)

    def to_float(self) -> float:
        """The exact value as a Python float (may overflow to inf).

        Intended for tests and diagnostics; library code rounds through
        :func:`repro.fp.rounding.round_and_pack` instead.
        """
        if self.kind is Kind.NAN:
            return float("nan")
        if self.kind is Kind.INF:
            return float("-inf") if self.sign else float("inf")
        if self.kind is Kind.ZERO:
            return -0.0 if self.sign else 0.0
        magnitude = self.sig * (2.0 ** self.exp)
        return -magnitude if self.sign else magnitude


# Decoded values are immutable, the hot formats are at most 16 bits
# wide (<= 65536 patterns), and wider formats touch a bounded working
# set per run -- so unpack() memoizes per format.  The cache is keyed
# by id(fmt) with the format pinned in the entry, which keeps lookups
# cheap while making id reuse impossible for live entries.
_UNPACK_CACHE: Dict[int, Tuple[FloatFormat, Dict[int, Unpacked]]] = {}
_UNPACK_CACHE_LIMIT = 1 << 16


def unpack(bits: int, fmt: FloatFormat) -> Unpacked:
    """Decode ``bits`` (an unsigned integer of ``fmt.width`` bits).

    Bits above the format width are rejected so that packing errors in
    SIMD lane handling fail loudly instead of corrupting silently.
    """
    entry = _UNPACK_CACHE.get(id(fmt))
    if entry is None or entry[0] is not fmt:
        entry = (fmt, {})
        _UNPACK_CACHE[id(fmt)] = entry
    memo = entry[1]
    cached = memo.get(bits)
    if cached is not None:
        return cached
    value = _unpack_uncached(bits, fmt)
    if len(memo) < _UNPACK_CACHE_LIMIT:
        memo[bits] = value
    return value


def _unpack_uncached(bits: int, fmt: FloatFormat) -> Unpacked:
    if bits < 0 or bits > fmt.bits_mask:
        raise ValueError(
            f"bit pattern {bits:#x} out of range for {fmt.name} ({fmt.width} bits)"
        )
    # Dispatch through the format's codec: IEEE formats land in
    # ieee_decode below, guest formats (posit, MX) bring their own.
    return fmt.decode(bits)


def ieee_decode(bits: int, fmt: FloatFormat) -> Unpacked:
    """Decode an IEEE-754-style encoding (the FloatFormat codec)."""
    sign = (bits >> (fmt.width - 1)) & 1
    biased = (bits >> fmt.man_bits) & fmt.exp_mask
    mantissa = bits & fmt.man_mask

    if biased == fmt.exp_mask:
        if mantissa == 0:
            return Unpacked(Kind.INF, sign=sign)
        quiet = bool(mantissa & (1 << (fmt.man_bits - 1)))
        return Unpacked(Kind.NAN, sign=sign, signaling=not quiet)
    if biased == 0:
        if mantissa == 0:
            return Unpacked(Kind.ZERO, sign=sign)
        # Subnormal: no hidden bit, exponent pinned at emin.
        return Unpacked(
            Kind.FINITE, sign=sign, sig=mantissa, exp=fmt.emin - fmt.man_bits
        )
    sig = mantissa | (1 << fmt.man_bits)
    exp = biased - fmt.bias - fmt.man_bits
    return Unpacked(Kind.FINITE, sign=sign, sig=sig, exp=exp)


def from_python_float(value: float) -> Unpacked:
    """Unpack a Python float (an IEEE binary64) into an exact value."""
    import struct

    from .formats import BINARY64

    (bits,) = struct.unpack("<Q", struct.pack("<d", value))
    return unpack(bits, BINARY64)
