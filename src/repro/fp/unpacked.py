"""Codec between bit patterns and exact unpacked floating-point values.

An :class:`Unpacked` value classifies a bit pattern and, for finite
values, carries the *exact* value as ``(-1)**sign * sig * 2**exp`` with
an arbitrary-precision integer significand.  This representation lets
the arithmetic core (:mod:`repro.fp.arith`) compute exactly and round
once at the end.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .formats import FloatFormat


class Kind(enum.Enum):
    """Classification of a floating-point datum."""

    ZERO = "zero"
    FINITE = "finite"  # normal or subnormal, non-zero
    INF = "inf"
    NAN = "nan"


@dataclass(frozen=True)
class Unpacked:
    """A decoded floating-point value.

    For ``FINITE`` values, ``value == (-1)**sign * sig * 2**exp`` with
    ``sig > 0``.  For the other kinds only ``sign`` (and for NaNs
    ``signaling``) is meaningful.
    """

    kind: Kind
    sign: int = 0
    sig: int = 0
    exp: int = 0
    signaling: bool = False

    # Convenience predicates -------------------------------------------------
    @property
    def is_nan(self) -> bool:
        return self.kind is Kind.NAN

    @property
    def is_snan(self) -> bool:
        return self.kind is Kind.NAN and self.signaling

    @property
    def is_inf(self) -> bool:
        return self.kind is Kind.INF

    @property
    def is_zero(self) -> bool:
        return self.kind is Kind.ZERO

    @property
    def is_finite(self) -> bool:
        return self.kind in (Kind.ZERO, Kind.FINITE)

    def to_float(self) -> float:
        """The exact value as a Python float (may overflow to inf).

        Intended for tests and diagnostics; library code rounds through
        :func:`repro.fp.rounding.round_and_pack` instead.
        """
        if self.kind is Kind.NAN:
            return float("nan")
        if self.kind is Kind.INF:
            return float("-inf") if self.sign else float("inf")
        if self.kind is Kind.ZERO:
            return -0.0 if self.sign else 0.0
        magnitude = self.sig * (2.0 ** self.exp)
        return -magnitude if self.sign else magnitude


def unpack(bits: int, fmt: FloatFormat) -> Unpacked:
    """Decode ``bits`` (an unsigned integer of ``fmt.width`` bits).

    Bits above the format width are rejected so that packing errors in
    SIMD lane handling fail loudly instead of corrupting silently.
    """
    if bits < 0 or bits > fmt.bits_mask:
        raise ValueError(
            f"bit pattern {bits:#x} out of range for {fmt.name} ({fmt.width} bits)"
        )
    sign = (bits >> (fmt.width - 1)) & 1
    biased = (bits >> fmt.man_bits) & fmt.exp_mask
    mantissa = bits & fmt.man_mask

    if biased == fmt.exp_mask:
        if mantissa == 0:
            return Unpacked(Kind.INF, sign=sign)
        quiet = bool(mantissa & (1 << (fmt.man_bits - 1)))
        return Unpacked(Kind.NAN, sign=sign, signaling=not quiet)
    if biased == 0:
        if mantissa == 0:
            return Unpacked(Kind.ZERO, sign=sign)
        # Subnormal: no hidden bit, exponent pinned at emin.
        return Unpacked(
            Kind.FINITE, sign=sign, sig=mantissa, exp=fmt.emin - fmt.man_bits
        )
    sig = mantissa | (1 << fmt.man_bits)
    exp = biased - fmt.bias - fmt.man_bits
    return Unpacked(Kind.FINITE, sign=sign, sig=sig, exp=exp)


def from_python_float(value: float) -> Unpacked:
    """Unpack a Python float (an IEEE binary64) into an exact value."""
    import struct

    from .formats import BINARY64

    (bits,) = struct.unpack("<Q", struct.pack("<d", value))
    return unpack(bits, BINARY64)
