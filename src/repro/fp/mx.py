"""The Xmx8 guest extension: the MX8 block format (OCP Microscaling).

MX block formats [OCP MX spec 1.0; MXDOTP, Islamoglu et al.] pair a
group of narrow FP elements with one shared power-of-two scale:

* **element**: FP8 E4M3FN -- 1 sign / 4 exponent / 3 mantissa bits,
  bias 7, subnormals, *no infinities* and a single NaN mantissa code
  (``S.1111.111``), freeing the top binade for normal values up to 448;
* **scale**: an 8-bit E8M0 exponent byte (bias 127, all-ones = NaN),
  shared by every element of the block.

The scalar :class:`MX8Format` registered here is the element codec: it
rides the generic softfloat core exactly like any other format, so
``fadd.mx``/``fmul.mx`` etc. operate on unscaled E4M3FN elements.  The
block layout lives in :func:`pack_block` / :func:`unpack_block`, and
:func:`block_dotp` implements the ``vfdotpmx`` accumulator: a 3-lane
block dot product scaled by both operands' shared exponents, expanding
into a binary32 accumulator with a *single* rounding -- the MX
counterpart of the paper's ``vfdotpex`` expanding dot product.

E4M3FN is deliberately *not* expressible as a :class:`FloatFormat`: the
top biased exponent is not an inf/NaN escape (only mantissa 0b111 is
NaN), so the codec below is its own NumberFormat implementation.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple

from . import registry
from .flags import NX, OF, UF
from .registry import (
    CLASS_NEG_NORMAL,
    CLASS_NEG_SUBNORMAL,
    CLASS_NEG_ZERO,
    CLASS_POS_NORMAL,
    CLASS_POS_SUBNORMAL,
    CLASS_POS_ZERO,
    CLASS_QNAN,
    NumberFormat,
)
from .rounding import RoundingMode

#: E4M3FN element geometry.
_EXP_BITS = 4
_MAN_BITS = 3
_BIAS = 7
_EMIN = -6  # smallest normal exponent
_EMAX = 8  # 448 = 0b1.110 * 2**8
_NAN_MAN = 0b111

#: E8M0 shared-scale geometry (an unsigned biased exponent byte).
SCALE_BIAS = 127
SCALE_NAN = 0xFF

#: Elements per 32-bit block register: scale byte + 3 element lanes.
BLOCK_LANES = 3

#: Energy row: the element ALU prices like binary8 (same width, similar
#: datapath); ``dotp`` prices the MXDOTP-style block unit, slightly
#: above the binary8 SIMD dot product to pay for the scale adder.
_MX8_ENERGY: Dict[str, float] = {
    "arith": 2.4, "fma": 3.0, "div": 7.0, "misc": 1.6, "dotp": 8.2,
}


class MX8Format(NumberFormat):
    """The MX8 element format: FP8 E4M3FN with a registry codec."""

    ieee = False
    is_guest = True
    #: No packed-SIMD forms: MX8 vector work goes through the block
    #: dot-product unit (``vfdotpmx``), not lane-wise packed ops.
    has_vector = False
    has_inf = False
    has_block_dotp = True
    ext_name = "Xmx8"

    name = "mx8"
    suffix = "mx"
    c_keyword = "mx8"
    width = 8
    guest_fmt2 = 0b10
    cvt_code = 10
    quiet_nan = 0x7F

    # ------------------------------------------------------------------
    # Special values (sign-magnitude defaults from NumberFormat apply)
    # ------------------------------------------------------------------
    def inf(self, sign: int) -> int:
        # No infinity: overflow materializes the NaN code.
        return self.with_sign(self.quiet_nan, sign)

    def zero(self, sign: int) -> int:
        return self.sign_mask if sign else 0

    def max_finite_signed(self, sign: int) -> int:
        return self.with_sign(0x7E, sign)  # 0b0.1111.110 = 448

    # ------------------------------------------------------------------
    # Codec
    # ------------------------------------------------------------------
    def decode(self, bits: int):
        from .unpacked import Kind, Unpacked

        sign = (bits >> 7) & 1
        biased = (bits >> _MAN_BITS) & ((1 << _EXP_BITS) - 1)
        man = bits & ((1 << _MAN_BITS) - 1)
        if biased == (1 << _EXP_BITS) - 1 and man == _NAN_MAN:
            return Unpacked(Kind.NAN, sign=sign, signaling=False)
        if biased == 0:
            if man == 0:
                return Unpacked(Kind.ZERO, sign=sign)
            return Unpacked(Kind.FINITE, sign=sign, sig=man,
                            exp=_EMIN - _MAN_BITS)
        return Unpacked(Kind.FINITE, sign=sign, sig=man | (1 << _MAN_BITS),
                        exp=biased - _BIAS - _MAN_BITS)

    def round_pack(self, sign: int, sig: int, exp: int, rm) -> Tuple[int, int]:
        from .rounding import _shift_right_round

        p = _MAN_BITS + 1
        nbits = sig.bit_length()
        msb_exp = exp + nbits - 1
        flags = 0
        if msb_exp >= _EMIN:
            rounded, inexact = _shift_right_round(sig, nbits - p, rm, sign)
            exp_out = msb_exp
            if rounded.bit_length() > p:
                rounded >>= 1
                exp_out += 1
            if inexact:
                flags |= NX
            mantissa = rounded & ((1 << _MAN_BITS) - 1)
            # The S.1111.111 encoding is NaN, so 0b1.111 * 2**EMAX (480)
            # overflows even though its biased exponent is in range.
            if exp_out > _EMAX or (exp_out == _EMAX and mantissa == _NAN_MAN):
                return self._overflow(rm, sign), flags | OF | NX
            biased = exp_out + _BIAS
            return (sign << 7) | (biased << _MAN_BITS) | mantissa, flags
        # Subnormal range (same tininess-after-rounding shape as IEEE).
        discard = (_EMIN - _MAN_BITS) - exp
        rounded, inexact = _shift_right_round(sig, discard, rm, sign)
        if inexact:
            flags |= NX
            unbounded, _ = _shift_right_round(sig, nbits - p, rm, sign)
            unbounded_msb = msb_exp + (1 if unbounded.bit_length() > p else 0)
            if unbounded_msb < _EMIN:
                flags |= UF
        if rounded.bit_length() > _MAN_BITS:
            return (sign << 7) | (1 << _MAN_BITS), flags  # smallest normal
        return (sign << 7) | rounded, flags

    def _overflow(self, rm, sign: int) -> int:
        # E4M3FN overflow: nearest modes produce NaN (no inf to round
        # to); directed modes saturate at +-448 like IEEE saturating
        # modes do at max finite.  SR follows the nearest modes.
        if rm in (RoundingMode.RNE, RoundingMode.RMM, RoundingMode.SR):
            return self.inf(sign)
        if rm == RoundingMode.RTZ:
            return self.max_finite_signed(sign)
        if rm == RoundingMode.RDN:
            return self.max_finite_signed(0) if sign == 0 else self.inf(1)
        if rm == RoundingMode.RUP:
            return self.inf(0) if sign == 0 else self.max_finite_signed(1)
        raise ValueError(f"cannot overflow with mode {rm!r}")

    def classify(self, bits: int) -> int:
        from .unpacked import unpack

        u = unpack(bits, self)
        if u.is_nan:
            return CLASS_QNAN  # E4M3FN has no signaling NaN
        if u.is_zero:
            return CLASS_NEG_ZERO if u.sign else CLASS_POS_ZERO
        subnormal = ((bits >> _MAN_BITS) & ((1 << _EXP_BITS) - 1)) == 0
        if u.sign:
            return CLASS_NEG_SUBNORMAL if subnormal else CLASS_NEG_NORMAL
        return CLASS_POS_SUBNORMAL if subnormal else CLASS_POS_NORMAL

    # ------------------------------------------------------------------
    # Exact values / analysis hooks
    # ------------------------------------------------------------------
    @property
    def max_value(self) -> float:
        return 448.0

    @property
    def min_normal_value(self) -> float:
        return float(2.0 ** _EMIN)

    @property
    def machine_epsilon(self) -> float:
        return float(2.0 ** -_MAN_BITS)

    @property
    def min_positive_value(self) -> float:
        return float(2.0 ** (_EMIN - _MAN_BITS))

    def rnd_abs(self, mag: float) -> float:
        # Same shape as the IEEE bound: relative eps * mag plus one
        # minimum-subnormal ulp, each widened one binary64 ulp upward.
        up = math.inf
        return math.nextafter(
            math.nextafter(self.machine_epsilon * mag, up)
            + self.min_positive_value, up)

    def energy_row(self) -> Dict[str, float]:
        return dict(_MX8_ENERGY)

    def block_dotp(self, acc_bits: int, block_a: int, block_b: int,
                   rm) -> Tuple[int, int]:
        # Resolves to the module-level helper below at call time.
        return block_dotp(acc_bits, block_a, block_b, rm)

    def decode_lanes(self, bits: int, flen: int = 32) -> List[float]:
        # A packed MX8 register image is a shared-scale block, not
        # independent lanes: decoded values carry the block scale.
        return decode_block(bits)


MX8 = MX8Format()
registry.register(MX8)


# ----------------------------------------------------------------------
# Block layout: one 32-bit register = E8M0 scale byte | 3 element lanes
# ----------------------------------------------------------------------
def pack_block(scale: int, elements: Iterable[int]) -> int:
    """Pack an E8M0 scale byte and up to 3 E4M3FN elements into 32 bits.

    Lane 0 sits in the low byte; missing lanes are zero-filled.
    """
    elems = list(elements)
    if len(elems) > BLOCK_LANES:
        raise ValueError(f"MX8 block holds {BLOCK_LANES} lanes, got {len(elems)}")
    word = (scale & 0xFF) << (8 * BLOCK_LANES)
    for lane, e in enumerate(elems):
        word |= (e & 0xFF) << (8 * lane)
    return word


def unpack_block(word: int) -> Tuple[int, List[int]]:
    """Split a 32-bit block register into (scale, [lane0, lane1, lane2])."""
    scale = (word >> (8 * BLOCK_LANES)) & 0xFF
    elems = [(word >> (8 * lane)) & 0xFF for lane in range(BLOCK_LANES)]
    return scale, elems


def block_scale_value(scale: int) -> int:
    """The unbiased shared exponent of an E8M0 scale byte."""
    return scale - SCALE_BIAS


def choose_scale(values: Iterable[float]) -> int:
    """Pick the E8M0 scale for a block of values (OCP MX recipe).

    The shared exponent is ``floor(log2(max |v|)) - emax_elem`` so the
    largest element lands in the element format's top binade.
    """
    amax = max((abs(v) for v in values if v and math.isfinite(v)), default=0.0)
    if amax == 0.0:
        return SCALE_BIAS  # scale 2**0 for an all-zero block
    shared = int(math.floor(math.log2(amax))) - _EMAX
    return max(0, min(0xFE, shared + SCALE_BIAS))


def quantize_block(values: Iterable[float],
                   rm: RoundingMode = RoundingMode.RNE) -> int:
    """Quantize up to 3 Python floats into a packed MX8 block."""
    from .convert import from_double

    vals = list(values)
    scale = choose_scale(vals)
    shift = -block_scale_value(scale)
    elems = []
    for v in vals:
        scaled = math.ldexp(v, shift) if math.isfinite(v) else v
        if math.isfinite(scaled):
            # OCP MX conversion clamps to the element maximum: a lane
            # in the top binade but beyond 448 saturates, it does not
            # become the E4M3FN NaN.
            scaled = max(-MX8.max_value, min(MX8.max_value, scaled))
        elems.append(from_double(scaled, MX8, rm))
    return pack_block(scale, elems)


def decode_block(word: int) -> List[float]:
    """The exact values of a block's lanes as Python floats."""
    from .convert import to_double

    scale, elems = unpack_block(word)
    if scale == SCALE_NAN:
        return [math.nan] * BLOCK_LANES
    s = block_scale_value(scale)
    # ldexp(nan, s) is nan, so NaN elements pass through unharmed.
    return [math.ldexp(to_double(e, MX8), s) for e in elems]


def block_dotp(acc_bits: int, block_a: int, block_b: int,
               rm: RoundingMode) -> Tuple[int, int]:
    """``vfdotpmx.s.mx``: binary32 acc += 2**(sa+sb) * sum(a[i]*b[i]).

    The lane products and their sum are computed exactly (arbitrary
    precision), scaled by both blocks' shared exponents, added to the
    accumulator and rounded *once* into binary32 -- the same
    single-rounding contract as the host ``vfdotpex`` expanding dot
    product.  A NaN scale or element, or a NaN accumulator, yields the
    canonical binary32 quiet NaN.
    """
    from .formats import BINARY32
    from .rounding import round_and_pack
    from .unpacked import unpack

    sa, elems_a = unpack_block(block_a)
    sb, elems_b = unpack_block(block_b)
    uacc = unpack(acc_bits, BINARY32)
    if sa == SCALE_NAN or sb == SCALE_NAN or uacc.is_nan:
        return BINARY32.quiet_nan, 0
    terms = []
    if not uacc.is_zero:
        if uacc.is_inf:
            return acc_bits, 0
        terms.append((uacc.sign, uacc.sig, uacc.exp))
    shift = block_scale_value(sa) + block_scale_value(sb)
    for ea, eb in zip(elems_a, elems_b):
        ua, ub = unpack(ea, MX8), unpack(eb, MX8)
        if ua.is_nan or ub.is_nan:
            return BINARY32.quiet_nan, 0
        if ua.is_zero or ub.is_zero:
            continue
        terms.append((ua.sign ^ ub.sign, ua.sig * ub.sig,
                      ua.exp + ub.exp + shift))
    if not terms:
        return acc_bits if not uacc.is_zero else BINARY32.zero(uacc.sign), 0
    common = min(exp for _, _, exp in terms)
    total = sum((sig << (exp - common)) * (-1 if sign else 1)
                for sign, sig, exp in terms)
    if total == 0:
        # Exact cancellation: +0 except in RDN, mirroring fadd.
        return BINARY32.zero(1 if rm == RoundingMode.RDN else 0), 0
    sign = 1 if total < 0 else 0
    return round_and_pack(BINARY32, sign, abs(total), common, rm)
