"""Floating-point format descriptors for the smallFloat extensions.

The paper (Section III) defines three *smallFloat* formats next to the
standard IEEE binary32/binary64:

* ``binary16``    -- IEEE 754 half precision, 1 sign / 5 exponent / 10
  mantissa bits (extension ``Xf16``).
* ``binary16alt`` -- a custom 16-bit format with the dynamic range of
  binary32: 1 sign / 8 exponent / 7 mantissa bits, i.e. the format
  nowadays known as bfloat16 (extension ``Xf16alt``).
* ``binary8``     -- a custom 8-bit minifloat with 1 sign / 5 exponent /
  2 mantissa bits (extension ``Xf8``), as specified in the companion
  transprecision-platform paper [Tagliavini et al., DATE 2018].

Every format follows IEEE 754 conventions: a biased exponent, a hidden
leading significand bit for normal numbers, gradual underflow via
subnormals, signed zeroes/infinities and quiet/signaling NaNs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from . import registry
from .registry import (
    CLASS_NEG_INF,
    CLASS_NEG_NORMAL,
    CLASS_NEG_SUBNORMAL,
    CLASS_NEG_ZERO,
    CLASS_POS_INF,
    CLASS_POS_NORMAL,
    CLASS_POS_SUBNORMAL,
    CLASS_POS_ZERO,
    CLASS_QNAN,
    CLASS_SNAN,
    NumberFormat,
)


@dataclass(frozen=True)
class FloatFormat(NumberFormat):
    """An IEEE-754-style binary interchange format.

    Attributes:
        name: Human-readable format name (e.g. ``"binary16"``).
        exp_bits: Width of the biased exponent field.
        man_bits: Width of the (explicit) trailing significand field.
        suffix: Instruction-mnemonic suffix used by the ISA extensions
            (``s`` for binary32, ``h`` for binary16, ``ah`` for
            binary16alt, ``b`` for binary8, ``d`` for binary64).
        c_keyword: The C type keyword introduced by the compiler support
            (Section IV), or the pre-existing C type name.

    The derived geometry (``width``, masks, well-known encodings) is
    precomputed at construction: the softfloat core reads these values
    on every unpack/round, and recomputing them per access dominated
    simulation profiles.  Identity, equality and hashing still depend
    only on the five defining fields.
    """

    name: str
    exp_bits: int
    man_bits: int
    suffix: str
    c_keyword: str
    #: rs2 sub-code naming this format as a conversion operand
    #: (the paper's SRC_CODE table; not part of format identity).
    cvt_code: int = field(default=0, compare=False)

    # IEEE formats are the host family: encoded in OP-FP, vectorized by
    # the fast numpy backend, with true infinities.
    ieee = True
    is_guest = False
    has_inf = True
    has_vector = True

    # ------------------------------------------------------------------
    # Derived geometry (filled in by __post_init__)
    # ------------------------------------------------------------------
    #: Total storage width in bits (sign + exponent + mantissa).
    width: int = field(init=False, repr=False, compare=False, default=0)
    #: Significand precision p, including the hidden bit.
    precision: int = field(init=False, repr=False, compare=False, default=0)
    #: Exponent bias (2^(exp_bits-1) - 1).
    bias: int = field(init=False, repr=False, compare=False, default=0)
    #: Largest unbiased exponent of a normal number.
    emax: int = field(init=False, repr=False, compare=False, default=0)
    #: Smallest unbiased exponent of a normal number (1 - bias).
    emin: int = field(init=False, repr=False, compare=False, default=0)
    #: All-ones pattern of the exponent field (NaN/inf exponent).
    exp_mask: int = field(init=False, repr=False, compare=False, default=0)
    #: All-ones pattern of the trailing significand field.
    man_mask: int = field(init=False, repr=False, compare=False, default=0)
    #: Bit mask selecting the sign bit.
    sign_mask: int = field(init=False, repr=False, compare=False, default=0)
    #: All-ones pattern of the full encoding width.
    bits_mask: int = field(init=False, repr=False, compare=False, default=0)
    #: The canonical quiet NaN (positive, MSB of mantissa set) -- the
    #: RISC-V convention of never propagating NaN payloads.
    quiet_nan: int = field(init=False, repr=False, compare=False, default=0)
    #: Encoding of +infinity.
    pos_inf: int = field(init=False, repr=False, compare=False, default=0)
    #: Encoding of -infinity.
    neg_inf: int = field(init=False, repr=False, compare=False, default=0)
    #: Encoding of the largest positive finite value.
    max_finite: int = field(init=False, repr=False, compare=False, default=0)
    #: Encoding of the smallest positive normal value.
    min_normal: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        set_ = object.__setattr__  # frozen dataclass
        width = 1 + self.exp_bits + self.man_bits
        exp_mask = (1 << self.exp_bits) - 1
        man_mask = (1 << self.man_bits) - 1
        bias = (1 << (self.exp_bits - 1)) - 1
        set_(self, "width", width)
        set_(self, "precision", self.man_bits + 1)
        set_(self, "bias", bias)
        set_(self, "emax", bias)
        set_(self, "emin", 1 - bias)
        set_(self, "exp_mask", exp_mask)
        set_(self, "man_mask", man_mask)
        set_(self, "sign_mask", 1 << (width - 1))
        set_(self, "bits_mask", (1 << width) - 1)
        set_(self, "quiet_nan",
             (exp_mask << self.man_bits) | (1 << (self.man_bits - 1)))
        set_(self, "pos_inf", exp_mask << self.man_bits)
        set_(self, "neg_inf", (1 << (width - 1)) | (exp_mask << self.man_bits))
        set_(self, "max_finite",
             ((exp_mask - 1) << self.man_bits) | man_mask)
        set_(self, "min_normal", 1 << self.man_bits)

    # ------------------------------------------------------------------
    # Rarely used encodings (kept as properties)
    # ------------------------------------------------------------------
    @property
    def pos_zero(self) -> int:
        """Encoding of +0.0."""
        return 0

    @property
    def neg_zero(self) -> int:
        """Encoding of -0.0."""
        return self.sign_mask

    @property
    def min_subnormal(self) -> int:
        """Encoding of the smallest positive subnormal value."""
        return 1

    def inf(self, sign: int) -> int:
        """Encoding of infinity with the given sign (0 or 1)."""
        return self.neg_inf if sign else self.pos_inf

    def zero(self, sign: int) -> int:
        """Encoding of zero with the given sign (0 or 1)."""
        return self.neg_zero if sign else self.pos_zero

    def max_finite_signed(self, sign: int) -> int:
        """Encoding of the largest-magnitude finite value with a sign."""
        return (self.sign_mask | self.max_finite) if sign else self.max_finite

    # ------------------------------------------------------------------
    # NumberFormat codec hooks (IEEE semantics; the implementations
    # live in unpacked/rounding, imported late to keep this module at
    # the bottom of the dependency stack)
    # ------------------------------------------------------------------
    def decode(self, bits: int):
        from .unpacked import ieee_decode

        return ieee_decode(bits, self)

    def round_pack(self, sign: int, sig: int, exp: int, rm) -> Tuple[int, int]:
        from .rounding import ieee_round_and_pack

        return ieee_round_and_pack(self, sign, sig, exp, rm)

    def classify(self, bits: int) -> int:
        from .unpacked import unpack

        u = unpack(bits, self)
        if u.is_nan:
            return CLASS_SNAN if u.signaling else CLASS_QNAN
        if u.is_inf:
            return CLASS_NEG_INF if u.sign else CLASS_POS_INF
        if u.is_zero:
            return CLASS_NEG_ZERO if u.sign else CLASS_POS_ZERO
        subnormal = ((bits >> self.man_bits) & self.exp_mask) == 0
        if u.sign:
            return CLASS_NEG_SUBNORMAL if subnormal else CLASS_NEG_NORMAL
        return CLASS_POS_SUBNORMAL if subnormal else CLASS_POS_NORMAL

    # ------------------------------------------------------------------
    # Exact values (for tests, metrics and documentation)
    # ------------------------------------------------------------------
    @property
    def max_value(self) -> float:
        """The largest finite value as a Python float."""
        return float((2 - 2 ** -self.man_bits) * 2 ** self.emax)

    @property
    def min_normal_value(self) -> float:
        """The smallest positive normal value as a Python float."""
        return float(2.0 ** self.emin)

    @property
    def machine_epsilon(self) -> float:
        """Distance from 1.0 to the next representable value."""
        return float(2.0 ** -self.man_bits)

    @property
    def min_positive_value(self) -> float:
        """The smallest positive (subnormal) value as a Python float."""
        return float(2.0 ** (self.emin - self.man_bits))

    @property
    def dynamic_range_db(self) -> float:
        """Dynamic range max/min-subnormal in dB (20*log10)."""
        return 20.0 * math.log10(self.max_value / self.min_positive_value)

    # ------------------------------------------------------------------
    # Analysis / energy hooks
    # ------------------------------------------------------------------
    def rnd_abs(self, mag: float) -> float:
        """Sound absolute rounding-error bound over ``[-mag, mag]``.

        Relative error ``eps * mag`` plus one minimum-subnormal ulp to
        cover the flush into the subnormal range, each step widened one
        binary64 ulp upward so the bound stays sound under the float
        arithmetic computing it.
        """
        up = math.inf
        ulp_min = 2.0 ** (self.emin - self.man_bits)
        return math.nextafter(
            math.nextafter(self.machine_epsilon * mag, up) + ulp_min, up)

    def energy_row(self) -> Dict[str, float]:
        return _IEEE_ENERGY.get(self.suffix, {})

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FloatFormat({self.name}: 1+{self.exp_bits}+{self.man_bits}, "
            f"bias={self.bias})"
        )


# ----------------------------------------------------------------------
# Per-format energy rows (UMC65 FPnew numbers; see repro.energy.model
# for provenance).  Keyed by suffix; consumed through energy_row().
# ----------------------------------------------------------------------
_IEEE_ENERGY: Dict[str, Dict[str, float]] = {
    "s": {"arith": 6.6, "fma": 8.4, "div": 28.0, "misc": 3.0,
          "vec_arith": 11.2, "vec_fma": 14.5, "vec_div": 48.0},
    "h": {"arith": 3.7, "fma": 4.6, "div": 14.0, "misc": 2.0,
          "vec_arith": 6.2, "vec_fma": 8.0, "vec_div": 22.0, "dotp": 8.6},
    "ah": {"arith": 3.5, "fma": 4.4, "div": 13.0, "misc": 2.0,
           "vec_arith": 6.0, "vec_fma": 7.8, "vec_div": 21.0, "dotp": 8.4},
    "b": {"arith": 2.4, "fma": 3.0, "div": 7.0, "misc": 1.6,
          "vec_arith": 5.6, "vec_fma": 7.0, "vec_div": 16.0, "dotp": 7.8},
}


# ----------------------------------------------------------------------
# The format zoo of the smallFloat extensions
# ----------------------------------------------------------------------
BINARY8 = FloatFormat("binary8", exp_bits=5, man_bits=2, suffix="b",
                      c_keyword="float8", cvt_code=3)
BINARY16 = FloatFormat("binary16", exp_bits=5, man_bits=10, suffix="h",
                       c_keyword="float16", cvt_code=2)
BINARY16ALT = FloatFormat(
    "binary16alt", exp_bits=8, man_bits=7, suffix="ah", c_keyword="float16alt",
    cvt_code=6
)
BINARY32 = FloatFormat("binary32", exp_bits=8, man_bits=23, suffix="s",
                       c_keyword="float", cvt_code=0)
BINARY64 = FloatFormat("binary64", exp_bits=11, man_bits=52, suffix="d",
                       c_keyword="double", cvt_code=1)

for _fmt in (BINARY8, BINARY16, BINARY16ALT, BINARY32, BINARY64):
    registry.register(_fmt)
del _fmt

#: All formats known to the library, keyed by name.
FORMATS: Dict[str, FloatFormat] = {
    f.name: f for f in (BINARY8, BINARY16, BINARY16ALT, BINARY32, BINARY64)
}

#: Formats keyed by ISA mnemonic suffix (``fadd.h`` -> ``h``).
FORMATS_BY_SUFFIX: Dict[str, FloatFormat] = {f.suffix: f for f in FORMATS.values()}

#: Formats keyed by the C keyword exposed by the compiler extension.
FORMATS_BY_KEYWORD: Dict[str, FloatFormat] = {f.c_keyword: f for f in FORMATS.values()}

#: The smallFloat formats proper (smaller than 32 bits).
SMALLFLOAT_FORMATS: Tuple[FloatFormat, ...] = (BINARY16, BINARY16ALT, BINARY8)


def lookup(spec) -> NumberFormat:
    """Resolve a format from a ``NumberFormat``, name, suffix or keyword.

    Delegates to the format registry, so guest formats (posit, MX) are
    resolved too.  Unknown specs raise :class:`registry.FormatLookupError`
    (a ``ReproError``) enumerating every registered name/suffix/keyword.

    >>> lookup("binary16") is BINARY16
    True
    >>> lookup("h") is BINARY16
    True
    >>> lookup("float8") is BINARY8
    True
    """
    return registry.lookup(spec)


# ----------------------------------------------------------------------
# Vector geometry (paper Table II)
# ----------------------------------------------------------------------
def vector_lanes(fmt: FloatFormat, flen: int) -> Optional[int]:
    """Number of SIMD lanes of ``fmt`` in an FLEN-bit FP register.

    Implements paper Table II: vectorial operations exist for every
    supported format *strictly narrower* than FLEN; a format wider than
    or equal to FLEN is held as a scalar (or not at all).

    Returns the lane count ``n``, or ``None`` when the format has no
    vector form at this FLEN (the "x" entries in Table II).

    >>> vector_lanes(BINARY16, 32)
    2
    >>> vector_lanes(BINARY8, 64)
    8
    >>> vector_lanes(BINARY32, 32) is None
    True
    """
    if flen not in (16, 32, 64):
        raise ValueError(f"FLEN must be 16, 32 or 64, got {flen}")
    if not fmt.has_vector:
        return None
    if fmt.width >= flen:
        return None
    return flen // fmt.width


def supported_vector_formats(flen: int) -> Dict[str, Optional[int]]:
    """The full Table II row for a given FLEN.

    Maps format name -> lane count (``None`` when unsupported), for the
    formats listed in the paper's Table II (F, Xf16, Xf16alt, Xf8).
    """
    return {
        fmt.name: vector_lanes(fmt, flen)
        for fmt in (BINARY32, BINARY16, BINARY16ALT, BINARY8)
    }
