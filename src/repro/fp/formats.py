"""Floating-point format descriptors for the smallFloat extensions.

The paper (Section III) defines three *smallFloat* formats next to the
standard IEEE binary32/binary64:

* ``binary16``    -- IEEE 754 half precision, 1 sign / 5 exponent / 10
  mantissa bits (extension ``Xf16``).
* ``binary16alt`` -- a custom 16-bit format with the dynamic range of
  binary32: 1 sign / 8 exponent / 7 mantissa bits, i.e. the format
  nowadays known as bfloat16 (extension ``Xf16alt``).
* ``binary8``     -- a custom 8-bit minifloat with 1 sign / 5 exponent /
  2 mantissa bits (extension ``Xf8``), as specified in the companion
  transprecision-platform paper [Tagliavini et al., DATE 2018].

Every format follows IEEE 754 conventions: a biased exponent, a hidden
leading significand bit for normal numbers, gradual underflow via
subnormals, signed zeroes/infinities and quiet/signaling NaNs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class FloatFormat:
    """An IEEE-754-style binary interchange format.

    Attributes:
        name: Human-readable format name (e.g. ``"binary16"``).
        exp_bits: Width of the biased exponent field.
        man_bits: Width of the (explicit) trailing significand field.
        suffix: Instruction-mnemonic suffix used by the ISA extensions
            (``s`` for binary32, ``h`` for binary16, ``ah`` for
            binary16alt, ``b`` for binary8, ``d`` for binary64).
        c_keyword: The C type keyword introduced by the compiler support
            (Section IV), or the pre-existing C type name.

    The derived geometry (``width``, masks, well-known encodings) is
    precomputed at construction: the softfloat core reads these values
    on every unpack/round, and recomputing them per access dominated
    simulation profiles.  Identity, equality and hashing still depend
    only on the five defining fields.
    """

    name: str
    exp_bits: int
    man_bits: int
    suffix: str
    c_keyword: str

    # ------------------------------------------------------------------
    # Derived geometry (filled in by __post_init__)
    # ------------------------------------------------------------------
    #: Total storage width in bits (sign + exponent + mantissa).
    width: int = field(init=False, repr=False, compare=False, default=0)
    #: Significand precision p, including the hidden bit.
    precision: int = field(init=False, repr=False, compare=False, default=0)
    #: Exponent bias (2^(exp_bits-1) - 1).
    bias: int = field(init=False, repr=False, compare=False, default=0)
    #: Largest unbiased exponent of a normal number.
    emax: int = field(init=False, repr=False, compare=False, default=0)
    #: Smallest unbiased exponent of a normal number (1 - bias).
    emin: int = field(init=False, repr=False, compare=False, default=0)
    #: All-ones pattern of the exponent field (NaN/inf exponent).
    exp_mask: int = field(init=False, repr=False, compare=False, default=0)
    #: All-ones pattern of the trailing significand field.
    man_mask: int = field(init=False, repr=False, compare=False, default=0)
    #: Bit mask selecting the sign bit.
    sign_mask: int = field(init=False, repr=False, compare=False, default=0)
    #: All-ones pattern of the full encoding width.
    bits_mask: int = field(init=False, repr=False, compare=False, default=0)
    #: The canonical quiet NaN (positive, MSB of mantissa set) -- the
    #: RISC-V convention of never propagating NaN payloads.
    quiet_nan: int = field(init=False, repr=False, compare=False, default=0)
    #: Encoding of +infinity.
    pos_inf: int = field(init=False, repr=False, compare=False, default=0)
    #: Encoding of -infinity.
    neg_inf: int = field(init=False, repr=False, compare=False, default=0)
    #: Encoding of the largest positive finite value.
    max_finite: int = field(init=False, repr=False, compare=False, default=0)
    #: Encoding of the smallest positive normal value.
    min_normal: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        set_ = object.__setattr__  # frozen dataclass
        width = 1 + self.exp_bits + self.man_bits
        exp_mask = (1 << self.exp_bits) - 1
        man_mask = (1 << self.man_bits) - 1
        bias = (1 << (self.exp_bits - 1)) - 1
        set_(self, "width", width)
        set_(self, "precision", self.man_bits + 1)
        set_(self, "bias", bias)
        set_(self, "emax", bias)
        set_(self, "emin", 1 - bias)
        set_(self, "exp_mask", exp_mask)
        set_(self, "man_mask", man_mask)
        set_(self, "sign_mask", 1 << (width - 1))
        set_(self, "bits_mask", (1 << width) - 1)
        set_(self, "quiet_nan",
             (exp_mask << self.man_bits) | (1 << (self.man_bits - 1)))
        set_(self, "pos_inf", exp_mask << self.man_bits)
        set_(self, "neg_inf", (1 << (width - 1)) | (exp_mask << self.man_bits))
        set_(self, "max_finite",
             ((exp_mask - 1) << self.man_bits) | man_mask)
        set_(self, "min_normal", 1 << self.man_bits)

    # ------------------------------------------------------------------
    # Rarely used encodings (kept as properties)
    # ------------------------------------------------------------------
    @property
    def pos_zero(self) -> int:
        """Encoding of +0.0."""
        return 0

    @property
    def neg_zero(self) -> int:
        """Encoding of -0.0."""
        return self.sign_mask

    @property
    def min_subnormal(self) -> int:
        """Encoding of the smallest positive subnormal value."""
        return 1

    def inf(self, sign: int) -> int:
        """Encoding of infinity with the given sign (0 or 1)."""
        return self.neg_inf if sign else self.pos_inf

    def zero(self, sign: int) -> int:
        """Encoding of zero with the given sign (0 or 1)."""
        return self.neg_zero if sign else self.pos_zero

    def max_finite_signed(self, sign: int) -> int:
        """Encoding of the largest-magnitude finite value with a sign."""
        return (self.sign_mask | self.max_finite) if sign else self.max_finite

    # ------------------------------------------------------------------
    # Exact values (for tests, metrics and documentation)
    # ------------------------------------------------------------------
    @property
    def max_value(self) -> float:
        """The largest finite value as a Python float."""
        return float((2 - 2 ** -self.man_bits) * 2 ** self.emax)

    @property
    def min_normal_value(self) -> float:
        """The smallest positive normal value as a Python float."""
        return float(2.0 ** self.emin)

    @property
    def machine_epsilon(self) -> float:
        """Distance from 1.0 to the next representable value."""
        return float(2.0 ** -self.man_bits)

    @property
    def dynamic_range_db(self) -> float:
        """Dynamic range max/min-subnormal in dB (20*log10)."""
        import math

        smallest = 2.0 ** (self.emin - self.man_bits)
        return 20.0 * math.log10(self.max_value / smallest)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FloatFormat({self.name}: 1+{self.exp_bits}+{self.man_bits}, "
            f"bias={self.bias})"
        )


# ----------------------------------------------------------------------
# The format zoo of the smallFloat extensions
# ----------------------------------------------------------------------
BINARY8 = FloatFormat("binary8", exp_bits=5, man_bits=2, suffix="b", c_keyword="float8")
BINARY16 = FloatFormat("binary16", exp_bits=5, man_bits=10, suffix="h", c_keyword="float16")
BINARY16ALT = FloatFormat(
    "binary16alt", exp_bits=8, man_bits=7, suffix="ah", c_keyword="float16alt"
)
BINARY32 = FloatFormat("binary32", exp_bits=8, man_bits=23, suffix="s", c_keyword="float")
BINARY64 = FloatFormat("binary64", exp_bits=11, man_bits=52, suffix="d", c_keyword="double")

#: All formats known to the library, keyed by name.
FORMATS: Dict[str, FloatFormat] = {
    f.name: f for f in (BINARY8, BINARY16, BINARY16ALT, BINARY32, BINARY64)
}

#: Formats keyed by ISA mnemonic suffix (``fadd.h`` -> ``h``).
FORMATS_BY_SUFFIX: Dict[str, FloatFormat] = {f.suffix: f for f in FORMATS.values()}

#: Formats keyed by the C keyword exposed by the compiler extension.
FORMATS_BY_KEYWORD: Dict[str, FloatFormat] = {f.c_keyword: f for f in FORMATS.values()}

#: The smallFloat formats proper (smaller than 32 bits).
SMALLFLOAT_FORMATS: Tuple[FloatFormat, ...] = (BINARY16, BINARY16ALT, BINARY8)


def lookup(spec) -> FloatFormat:
    """Resolve a format from a ``FloatFormat``, name, suffix or keyword.

    >>> lookup("binary16") is BINARY16
    True
    >>> lookup("h") is BINARY16
    True
    >>> lookup("float8") is BINARY8
    True
    """
    if isinstance(spec, FloatFormat):
        return spec
    for table in (FORMATS, FORMATS_BY_SUFFIX, FORMATS_BY_KEYWORD):
        if spec in table:
            return table[spec]
    raise KeyError(f"unknown floating-point format: {spec!r}")


# ----------------------------------------------------------------------
# Vector geometry (paper Table II)
# ----------------------------------------------------------------------
def vector_lanes(fmt: FloatFormat, flen: int) -> Optional[int]:
    """Number of SIMD lanes of ``fmt`` in an FLEN-bit FP register.

    Implements paper Table II: vectorial operations exist for every
    supported format *strictly narrower* than FLEN; a format wider than
    or equal to FLEN is held as a scalar (or not at all).

    Returns the lane count ``n``, or ``None`` when the format has no
    vector form at this FLEN (the "x" entries in Table II).

    >>> vector_lanes(BINARY16, 32)
    2
    >>> vector_lanes(BINARY8, 64)
    8
    >>> vector_lanes(BINARY32, 32) is None
    True
    """
    if flen not in (16, 32, 64):
        raise ValueError(f"FLEN must be 16, 32 or 64, got {flen}")
    if fmt.width >= flen:
        return None
    return flen // fmt.width


def supported_vector_formats(flen: int) -> Dict[str, Optional[int]]:
    """The full Table II row for a given FLEN.

    Maps format name -> lane count (``None`` when unsupported), for the
    formats listed in the paper's Table II (F, Xf16, Xf16alt, Xf8).
    """
    return {
        fmt.name: vector_lanes(fmt, flen)
        for fmt in (BINARY32, BINARY16, BINARY16ALT, BINARY8)
    }
