"""Ergonomic wrapper type over the softfloat core.

:class:`SmallFloat` pairs a bit pattern with its format and overloads
the Python operators, so exploratory code and tests read naturally:

    >>> from repro.fp import BINARY16, SmallFloat
    >>> a = SmallFloat.from_float(1.5, BINARY16)
    >>> b = SmallFloat.from_float(0.25, BINARY16)
    >>> float(a + b)
    1.75

Arithmetic uses round-to-nearest-even unless a different mode is set via
:meth:`SmallFloat.with_rounding`.  Operations between different formats
are deliberately rejected: transprecision code must convert explicitly,
exactly as the ISA (and the C type system extension) requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from . import arith, compare
from .convert import fcvt_f2f, from_double, to_double
from .formats import FloatFormat, lookup
from .rounding import RoundingMode
from .unpacked import unpack

_Number = Union[int, float]


@dataclass(frozen=True)
class SmallFloat:
    """An immutable floating-point value in an explicit format."""

    bits: int
    fmt: FloatFormat
    rm: RoundingMode = RoundingMode.RNE

    def __post_init__(self) -> None:
        if not 0 <= self.bits <= self.fmt.bits_mask:
            raise ValueError(
                f"bits {self.bits:#x} out of range for {self.fmt.name}"
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_float(
        cls, value: float, fmt, rm: RoundingMode = RoundingMode.RNE
    ) -> "SmallFloat":
        """Round a Python float into the given format."""
        fmt = lookup(fmt)
        return cls(from_double(float(value), fmt, rm), fmt, rm)

    @classmethod
    def from_bits(cls, bits: int, fmt) -> "SmallFloat":
        """Wrap a raw bit pattern."""
        return cls(bits, lookup(fmt))

    def with_rounding(self, rm: RoundingMode) -> "SmallFloat":
        """The same value, with subsequent operations rounded by ``rm``."""
        return SmallFloat(self.bits, self.fmt, rm)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __float__(self) -> float:
        return to_double(self.bits, self.fmt)

    @property
    def is_nan(self) -> bool:
        return unpack(self.bits, self.fmt).is_nan

    @property
    def is_inf(self) -> bool:
        return unpack(self.bits, self.fmt).is_inf

    @property
    def sign(self) -> int:
        return self.fmt.sign_of(self.bits)

    def convert(self, fmt, rm: RoundingMode = RoundingMode.RNE) -> "SmallFloat":
        """Convert to another format (may round, overflow or underflow)."""
        fmt = lookup(fmt)
        bits, _ = fcvt_f2f(self.fmt, fmt, self.bits, rm)
        return SmallFloat(bits, fmt, self.rm)

    # ------------------------------------------------------------------
    # Arithmetic operators
    # ------------------------------------------------------------------
    def _coerce(self, other: Union["SmallFloat", _Number]) -> "SmallFloat":
        if isinstance(other, SmallFloat):
            if other.fmt is not self.fmt and other.fmt.name != self.fmt.name:
                raise TypeError(
                    f"mixed-format arithmetic ({self.fmt.name} vs "
                    f"{other.fmt.name}) requires an explicit convert()"
                )
            return other
        if isinstance(other, (int, float)):
            return SmallFloat.from_float(float(other), self.fmt, self.rm)
        return NotImplemented  # type: ignore[return-value]

    def _binop(self, other, op) -> "SmallFloat":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        bits, _ = op(self.fmt, self.bits, rhs.bits, self.rm)
        return SmallFloat(bits, self.fmt, self.rm)

    def __add__(self, other):
        return self._binop(other, arith.fadd)

    def __radd__(self, other):
        return SmallFloat.from_float(float(other), self.fmt, self.rm) + self

    def __sub__(self, other):
        return self._binop(other, arith.fsub)

    def __rsub__(self, other):
        return SmallFloat.from_float(float(other), self.fmt, self.rm) - self

    def __mul__(self, other):
        return self._binop(other, arith.fmul)

    def __rmul__(self, other):
        return SmallFloat.from_float(float(other), self.fmt, self.rm) * self

    def __truediv__(self, other):
        return self._binop(other, arith.fdiv)

    def __rtruediv__(self, other):
        return SmallFloat.from_float(float(other), self.fmt, self.rm) / self

    def __neg__(self) -> "SmallFloat":
        return SmallFloat(self.fmt.neg_bits(self.bits), self.fmt, self.rm)

    def __abs__(self) -> "SmallFloat":
        return SmallFloat(self.fmt.abs_bits(self.bits), self.fmt, self.rm)

    def sqrt(self) -> "SmallFloat":
        """Correctly rounded square root."""
        bits, _ = arith.fsqrt(self.fmt, self.bits, self.rm)
        return SmallFloat(bits, self.fmt, self.rm)

    def fma(self, b: "SmallFloat", c: "SmallFloat") -> "SmallFloat":
        """Fused ``self * b + c`` with a single rounding."""
        b = self._coerce(b)
        c = self._coerce(c)
        bits, _ = arith.ffma(self.fmt, self.bits, b.bits, c.bits, self.rm)
        return SmallFloat(bits, self.fmt, self.rm)

    # ------------------------------------------------------------------
    # Comparisons (IEEE semantics: NaN is unordered)
    # ------------------------------------------------------------------
    def _cmp(self, other, op) -> bool:
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        result, _ = op(self.fmt, self.bits, rhs.bits)
        return bool(result)

    def __eq__(self, other) -> bool:  # type: ignore[override]
        if not isinstance(other, (SmallFloat, int, float)):
            return NotImplemented
        return self._cmp(other, compare.feq)

    def __lt__(self, other) -> bool:
        return self._cmp(other, compare.flt)

    def __le__(self, other) -> bool:
        return self._cmp(other, compare.fle)

    def __gt__(self, other) -> bool:
        return self._coerce(other)._cmp(self, compare.flt)

    def __ge__(self, other) -> bool:
        return self._coerce(other)._cmp(self, compare.fle)

    def __hash__(self) -> int:
        return hash((self.fmt.name, self.bits))

    def __repr__(self) -> str:
        return (
            f"SmallFloat({float(self)!r}, {self.fmt.name}, "
            f"bits={self.bits:#0{2 + (self.fmt.width + 3) // 4}x})"
        )
