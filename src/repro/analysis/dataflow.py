"""Generic forward/backward dataflow over the CFG, plus register models.

The framework is deliberately small: an analysis provides a boundary
value, a meet operator and a per-block transfer function; ``solve``
iterates to a fixed point with a worklist.  Three classic analyses are
built on it -- reaching definitions, liveness and maybe-uninitialized
registers -- all over the merged integer/FP register file of the
modelled RISCY core (the paper's configuration shares one register
file, so ``fa0`` and ``a0`` are the same storage).
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from ..isa.instructions import Instr
from .cfg import CFG, BasicBlock, Site

# ----------------------------------------------------------------------
# Register def/use extraction
# ----------------------------------------------------------------------
#: Operand kinds that read the named register field.
_READS_RS1 = {"rs1", "frs1", "mem", "fmem"}
_READS_RS2 = {"rs2", "frs2"}
_READS_RS3 = {"frs3"}

#: Instruction kinds that read their destination as an accumulator
#: (fmacex/vfmac/vfdotpex) or partially update it (vfcpka/vfcpkb fill
#: a lane pair and preserve the rest).
ACCUMULATE_KINDS = {"fmacex", "vfmac", "vfdotpex", "vfdotpmx",
                    "vfcpka", "vfcpkb"}

#: ABI state defined at a function entry in this model: x0, ra, sp and
#: the argument registers a0-a7 (the harness passes kernel arguments
#: there; FP scalars ride the same registers in the merged file).
ABI_DEFINED_AT_ENTRY: FrozenSet[int] = frozenset(
    {0, 1, 2} | set(range(10, 18))
)

#: Callee-saved registers (plus sp) a function must preserve, and the
#: ABI return-value pair: conservatively live out of every return.
CALLEE_SAVED: FrozenSet[int] = frozenset({2, 8, 9} | set(range(18, 28)))
LIVE_OUT_AT_RETURN: FrozenSet[int] = CALLEE_SAVED | frozenset({10, 11})

ALL_REGS: FrozenSet[int] = frozenset(range(32))


def regs_written(instr: Instr) -> List[int]:
    """Architectural registers an instruction writes (x0 excluded)."""
    out = []
    for kind in instr.spec.syntax:
        if kind in ("rd", "frd") and instr.rd != 0:
            out.append(instr.rd)
    return out


def regs_read(instr: Instr) -> List[int]:
    """Architectural registers an instruction reads (x0 excluded)."""
    out: Set[int] = set()
    syntax = instr.spec.syntax
    for kind in syntax:
        if kind in _READS_RS1 and instr.rs1 != 0:
            out.add(instr.rs1)
        elif kind in _READS_RS2 and instr.rs2 != 0:
            out.add(instr.rs2)
        elif kind in _READS_RS3 and instr.rs3 != 0:
            out.add(instr.rs3)
    if instr.spec.kind in ACCUMULATE_KINDS and instr.rd != 0:
        out.add(instr.rd)
    return sorted(out)


# ----------------------------------------------------------------------
# The framework
# ----------------------------------------------------------------------
class DataflowAnalysis:
    """Base class: subclass and override the four hooks below."""

    #: "forward" propagates entry->exit; "backward" the reverse.
    direction = "forward"

    def boundary(self, cfg: CFG, block: BasicBlock):
        """Value at the graph boundary (entry blocks / exit blocks)."""
        raise NotImplementedError

    def initial(self, cfg: CFG, block: BasicBlock):
        """Optimistic starting value for interior blocks."""
        raise NotImplementedError

    def meet(self, a, b):
        raise NotImplementedError

    def transfer(self, block: BasicBlock, value):
        """Value after the block, given the value before it."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def solve(self, cfg: CFG) -> Dict[int, Tuple[object, object]]:
        """Fixed point: block start -> (value-in, value-out).

        For backward analyses "in" is still the program-order entry of
        the block, i.e. the value *after* the transfer function.
        """
        forward = self.direction == "forward"
        starts = list(cfg.order)
        boundary_blocks = set(cfg.entries) | {c for _, c in cfg.calls} \
            if forward else {
                s for s in starts if not cfg.blocks[s].succs
            }

        values: Dict[int, object] = {}
        for start in starts:
            values[start] = self.initial(cfg, cfg.blocks[start])

        worklist = list(starts)
        results: Dict[int, Tuple[object, object]] = {}
        iterations = 0
        limit = max(64, 16 * len(starts) * len(starts))
        while worklist:
            iterations += 1
            if iterations > limit:  # pragma: no cover - safety net
                break
            start = worklist.pop(0)
            block = cfg.blocks[start]
            edges_in = block.preds if forward else block.succs
            incoming = None
            if start in boundary_blocks:
                incoming = self.boundary(cfg, block)
            for other in edges_in:
                contrib = values.get(other)
                if contrib is None:
                    continue
                incoming = contrib if incoming is None else \
                    self.meet(incoming, contrib)
            if incoming is None:
                incoming = self.boundary(cfg, block)
            outgoing = self.transfer(block, incoming)
            if outgoing != values[start]:
                values[start] = outgoing
                next_edges = block.succs if forward else block.preds
                for other in next_edges:
                    if other not in worklist:
                        worklist.append(other)
            results[start] = (incoming, outgoing)
        for start in starts:  # blocks never relaxed (unreachable)
            if start not in results:
                incoming = self.boundary(cfg, cfg.blocks[start])
                results[start] = (incoming,
                                  self.transfer(cfg.blocks[start], incoming))
        return results


# ----------------------------------------------------------------------
# Reaching definitions
# ----------------------------------------------------------------------
#: A definition is identified by the address of the defining site.
DefMap = Dict[int, FrozenSet[int]]  # reg -> set of defining addresses


class ReachingDefs(DataflowAnalysis):
    """Which instruction(s) may have last written each register."""

    direction = "forward"

    def boundary(self, cfg, block):
        return {}

    def initial(self, cfg, block):
        return {}

    def meet(self, a: DefMap, b: DefMap) -> DefMap:
        out = dict(a)
        for reg, defs in b.items():
            out[reg] = out.get(reg, frozenset()) | defs
        return out

    def transfer(self, block: BasicBlock, value: DefMap) -> DefMap:
        out = dict(value)
        for site in block.sites:
            if site.instr is None:
                continue
            for reg in regs_written(site.instr):
                out[reg] = frozenset({site.addr})
        return out

    # ------------------------------------------------------------------
    @staticmethod
    def at_each_site(block: BasicBlock, value_in: DefMap,
                     visit: Callable[[Site, DefMap], None]) -> None:
        """Walk a block, calling ``visit(site, defs-before-site)``."""
        current = dict(value_in)
        for site in block.sites:
            visit(site, current)
            if site.instr is not None:
                for reg in regs_written(site.instr):
                    current[reg] = frozenset({site.addr})


# ----------------------------------------------------------------------
# Liveness
# ----------------------------------------------------------------------
class Liveness(DataflowAnalysis):
    """Registers whose current value may still be read."""

    direction = "backward"

    def __init__(self, conservative_exit: bool = True):
        #: At a ``return``, the ABI result pair and callee-saved set are
        #: live; at indirect jumps / halts / undecodable ends everything
        #: is (conservatively) live unless told otherwise.
        self.conservative_exit = conservative_exit

    def boundary(self, cfg, block):
        if block.terminator == "return":
            return frozenset(LIVE_OUT_AT_RETURN)
        if self.conservative_exit:
            return frozenset(ALL_REGS)
        return frozenset()

    def initial(self, cfg, block):
        return frozenset()

    def meet(self, a, b):
        return a | b

    def transfer(self, block: BasicBlock, value: FrozenSet[int]):
        live = set(value)
        for site in reversed(block.sites):
            if site.instr is None:
                live = set(ALL_REGS)
                continue
            for reg in regs_written(site.instr):
                live.discard(reg)
            live.update(regs_read(site.instr))
            if site.instr.spec.cf == "jump" and site.instr.rd != 0:
                # A call: arguments are live into the callee, and the
                # callee may clobber the caller-saved file.
                live.update(range(10, 18))
        return frozenset(live)

    # ------------------------------------------------------------------
    @staticmethod
    def at_each_site(block: BasicBlock, live_out: FrozenSet[int],
                     visit: Callable[[Site, FrozenSet[int]], None]) -> None:
        """Walk a block backward, calling ``visit(site, live-after)``."""
        live = set(live_out)
        for site in reversed(block.sites):
            visit(site, frozenset(live))
            if site.instr is None:
                live = set(ALL_REGS)
                continue
            for reg in regs_written(site.instr):
                live.discard(reg)
            live.update(regs_read(site.instr))
            if site.instr.spec.cf == "jump" and site.instr.rd != 0:
                live.update(range(10, 18))


# ----------------------------------------------------------------------
# Maybe-uninitialized registers
# ----------------------------------------------------------------------
class MaybeUninitialized(DataflowAnalysis):
    """Registers that may be read before any write on some path."""

    direction = "forward"

    def boundary(self, cfg, block):
        return frozenset(ALL_REGS - ABI_DEFINED_AT_ENTRY)

    def initial(self, cfg, block):
        return frozenset()

    def meet(self, a, b):
        return a | b

    def transfer(self, block: BasicBlock, value: FrozenSet[int]):
        maybe = set(value)
        for site in block.sites:
            if site.instr is None:
                continue
            for reg in regs_written(site.instr):
                maybe.discard(reg)
            if site.instr.spec.cf == "jump" and site.instr.rd != 0:
                # Call: the callee returns with a0/a1 defined.
                maybe.discard(10)
                maybe.discard(11)
        return frozenset(maybe)

    # ------------------------------------------------------------------
    @staticmethod
    def at_each_site(block: BasicBlock, value_in: FrozenSet[int],
                     visit: Callable[[Site, FrozenSet[int]], None]) -> None:
        maybe = set(value_in)
        for site in block.sites:
            visit(site, frozenset(maybe))
            if site.instr is None:
                continue
            for reg in regs_written(site.instr):
                maybe.discard(reg)
            if site.instr.spec.cf == "jump" and site.instr.rd != 0:
                maybe.discard(10)
                maybe.discard(11)
    # Note: reads are checked by the lint pass, not here; the analysis
    # only tracks definedness.


# ----------------------------------------------------------------------
# FP format tracking
# ----------------------------------------------------------------------
#: A tracked value format: ``(elem, packed)`` where ``elem`` is the
#: format suffix ("s"/"h"/"ah"/"b") and ``packed`` marks a SIMD vector.
#: ``None`` in the map means "unknown / not an FP value".
Format = Tuple[str, bool]
FormatMap = Dict[int, Optional[Format]]


def result_format(instr: Instr) -> Optional[Format]:
    """Format of the value an instruction writes, when statically known.

    Integer results, raw bit moves and memory loads are ``None``
    (unknown): in the merged register file, plain ``lw`` legitimately
    loads packed smallFloat vectors, so loads carry no format evidence.
    """
    spec = instr.spec
    if spec.fp_fmt is None:
        return None
    kind = spec.kind
    if kind in ("flw", "fsw", "fmv_x_f", "fmv_f_x"):
        return None  # width-only operations: no element format evidence
    if kind in ("fle", "flt", "feq", "vfeq", "vflt", "vfle", "fclass",
                "fcvt_w_f", "fcvt_wu_f", "vfcvt_x_f"):
        return None  # integer result
    if kind in ("fmulex", "fmacex"):
        return ("s", False)  # expanding: binary32 scalar result
    if kind in ("vfdotpex", "vfdotpmx"):
        return ("s", False)  # expanding dot product: scalar accumulator
    return (spec.fp_fmt, bool(spec.vec))


def operand_formats(instr: Instr) -> Dict[int, Format]:
    """Expected format per *read* register, when the ISA pins one.

    Registers read without format expectations (address bases, raw
    moves) are omitted.
    """
    spec = instr.spec
    out: Dict[int, Format] = {}
    if spec.fp_fmt is None:
        return out
    kind = spec.kind
    vec = bool(spec.vec)
    elem = spec.fp_fmt

    def put(reg: int, fmt: Format) -> None:
        if reg != 0:
            out[reg] = fmt

    if kind in ("fcvt_f2f", "vfcvt_f2f"):
        put(instr.rs1, (spec.src_fmt or elem, vec))
        return out
    if kind in ("fmulex", "fmacex"):
        src = spec.src_fmt or elem
        put(instr.rs1, (src, False))
        put(instr.rs2, (src, False))
        if kind == "fmacex":
            put(instr.rd, ("s", False))
        return out
    if kind == "vfdotpex":
        src = spec.src_fmt or elem
        put(instr.rs1, (src, True))
        put(instr.rs2, (src, not spec.repl))
        put(instr.rd, ("s", False))
        return out
    if kind == "vfdotpmx":
        src = spec.src_fmt or elem
        put(instr.rs1, (src, True))
        put(instr.rs2, (src, True))
        put(instr.rd, ("s", False))
        return out
    if kind in ("vfcpka", "vfcpkb"):
        put(instr.rs1, ("s", False))
        put(instr.rs2, ("s", False))
        return out
    if kind in ("flw", "fsw", "fmv_x_f", "fmv_f_x", "fcvt_f_w", "fcvt_f_wu",
                "vfcvt_f_x", "vfcvt_x_f"):
        return out  # loads/stores/raw moves: width only, no format demand
    # Generic scalar/vector FP operations: every FP source operand is
    # expected in the operation's format; replicating variants read
    # rs2 as a scalar.
    syntax = spec.syntax
    if "frs1" in syntax:
        put(instr.rs1, (elem, vec))
    if "frs2" in syntax:
        put(instr.rs2, (elem, vec and not spec.repl))
    if "frs3" in syntax:
        put(instr.rs3, (elem, vec))
    if kind == "vfmac":
        put(instr.rd, (elem, vec))
    return out


class FormatTracking(DataflowAnalysis):
    """Forward per-register tracking of last-written FP formats."""

    direction = "forward"

    def boundary(self, cfg, block):
        return {}

    def initial(self, cfg, block):
        return {}

    def meet(self, a: FormatMap, b: FormatMap) -> FormatMap:
        out: FormatMap = {}
        for reg in set(a) | set(b):
            fa, fb = a.get(reg), b.get(reg)
            out[reg] = fa if fa == fb else None
        return out

    def transfer(self, block: BasicBlock, value: FormatMap) -> FormatMap:
        out = dict(value)
        for site in block.sites:
            if site.instr is None:
                continue
            fmt = result_format(site.instr)
            for reg in regs_written(site.instr):
                out[reg] = fmt
        return out

    # ------------------------------------------------------------------
    @staticmethod
    def at_each_site(block: BasicBlock, value_in: FormatMap,
                     visit: Callable[[Site, FormatMap], None]) -> None:
        current = dict(value_in)
        for site in block.sites:
            visit(site, current)
            if site.instr is not None:
                fmt = result_format(site.instr)
                for reg in regs_written(site.instr):
                    current = dict(current)
                    current[reg] = fmt
