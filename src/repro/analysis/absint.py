"""Abstract interpretation of value ranges and rounding error.

``analyze_program`` propagates, per FP register, an abstract value
:class:`AbsVal` through the CFG:

* an **interval** ``[lo, hi]`` bounding every finite value the register
  can hold (the *concrete*, already-rounded value, in binary64);
* an **absolute error bound** ``err`` on the distance between the
  concrete value and an exact real-arithmetic shadow computation over
  the same inputs (absolute -- not relative -- so the bound survives
  cancellation, where relative error is unbounded);
* ``can_inf`` / ``can_nan`` flags recording whether the register may
  hold a non-finite value;
* the producing smallFloat format, so reinterpreting bits under a
  different format degrades the value to ``top`` instead of silently
  keeping bounds that no longer describe the bits.

Transfer functions cover every FP/SIMD operation in the smallFloat ISA,
including the expanding ``fmacex``/``vfdotpex`` accumulations: those
round **once** into binary32 per instruction, so their error transfer
adds ``rnd(binary32, .)`` where a narrow ``vfmac`` adds
``rnd(binary8, .)`` per lane -- which is exactly how the analysis
*proves* that expanding accumulation shrinks error bounds.

Soundness contract (checked dynamically by
:mod:`repro.analysis.absint_validate`):

* **Input contract** -- a register consumed without a tracked value of
  the expected format (function inputs, memory loads, values
  reinterpreted after an integer write) is assumed finite with
  magnitude at most ``AbsintConfig.input_bound`` and zero accumulated
  error (the shadow is reseeded from the concrete bits there).
* **Trip contract** -- no natural loop runs more than
  ``AbsintConfig.trip_bound`` iterations per entry.  Widening at loop
  headers extrapolates linear growth to ``trip_bound`` trips instead of
  jumping straight to top; growth that keeps accelerating after
  re-widening goes to top (``err = inf``, format-wide interval).
* **Int contract** -- the integer operand of an int->float conversion
  has magnitude at most ``max(input_bound, trip_bound)`` (loop counters
  and sizes; arbitrary 2**31 integers would flag every conversion).

Interval endpoints are computed in binary64 with outward rounding
(``math.nextafter``), so host rounding never tightens a bound.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..fp import registry
from ..fp.formats import FORMATS_BY_SUFFIX
from ..fp.registry import NumberFormat
from ..isa.assembler import Program
from .cfg import CFG, BasicBlock, Site, build_cfg
from .dataflow import (
    CALLEE_SAVED,
    Format,
    regs_written,
    result_format,
)

#: Risk classes :func:`collect_risks` can report (mirrored as lint
#: checks in :mod:`repro.analysis.lints`).
RISK_KINDS = ("overflow", "underflow", "cancellation", "budget")

_INF = float("inf")
_TINY = 1e-300

#: Plain joins at a loop header before widening engages.
_JOIN_PASSES = 2

#: Re-widening rounds before a still-accelerating component goes to top.
_MAX_WIDEN_ROUNDS = 8

#: FLEN of the modelled core (Table II: 2x16-bit / 4x8-bit vectors).
_FLEN = 32

_B32 = FORMATS_BY_SUFFIX["s"]


@dataclass(frozen=True)
class AbsintConfig:
    """Tunable assumptions of the analysis (the soundness contract)."""

    #: Assumed magnitude bound on unknown-provenance FP operands.
    input_bound: float = 128.0
    #: Assumed maximum iterations of any natural loop per entry.
    trip_bound: int = 4096
    #: Relative error budget checked at store sites (``None`` = off).
    error_budget: Optional[float] = None


@dataclass(frozen=True)
class AbsVal:
    """Abstract FP value: interval, error bound, flags, producing format."""

    lo: float
    hi: float
    err: float
    can_inf: bool = False
    can_nan: bool = False
    fmt: Optional[Format] = None

    def maxmag(self) -> float:
        return max(abs(self.lo), abs(self.hi))

    def minmag(self) -> float:
        if self.lo <= 0.0 <= self.hi:
            return 0.0
        return min(abs(self.lo), abs(self.hi))

    def crosses_zero(self) -> bool:
        return self.lo <= 0.0 <= self.hi

    def to_dict(self) -> Dict[str, object]:
        return {
            "lo": self.lo,
            "hi": self.hi,
            "err": self.err,
            "can_inf": self.can_inf,
            "can_nan": self.can_nan,
            "fmt": None if self.fmt is None else list(self.fmt),
        }


Env = Dict[int, AbsVal]


def _float_format(fmt: Format) -> NumberFormat:
    return registry.by_suffix(fmt[0])


def contract_value(fmt: Format, config: AbsintConfig) -> AbsVal:
    """The input contract: finite, ``|v| <= input_bound``, zero error."""
    bound = min(config.input_bound, _float_format(fmt).max_value)
    return AbsVal(-bound, bound, 0.0, False, False, fmt)


def top_value(fmt: Optional[Format]) -> AbsVal:
    """No information beyond the format's representable range."""
    if fmt is None:
        return AbsVal(-_INF, _INF, _INF, True, True, None)
    m = _float_format(fmt).max_value
    return AbsVal(-m, m, _INF, True, True, fmt)


# ----------------------------------------------------------------------
# Outward-rounded binary64 interval arithmetic
# ----------------------------------------------------------------------
def _up(x: float) -> float:
    """Next binary64 above ``x`` (upper bound after one rounded op)."""
    if math.isnan(x) or x == _INF:
        return _INF
    return math.nextafter(x, _INF)


def _dn(x: float) -> float:
    if math.isnan(x) or x == -_INF:
        return -_INF
    return math.nextafter(x, -_INF)


def _rnd(fmt: NumberFormat, mag: float) -> float:
    """Absolute error of rounding an exact value of magnitude <= ``mag``
    into ``fmt``, via the format's registry hook (IEEE: 1 ulp relative,
    covering every rounding mode, plus the minimum ulp for the
    subnormal range; posit: the tapered-precision grid gap at ``mag``)."""
    if not math.isfinite(mag):
        return _INF
    return fmt.rnd_abs(mag)


def _hull(*vals: AbsVal) -> Tuple[float, float]:
    return min(v.lo for v in vals), max(v.hi for v in vals)


def _add_iv(a: AbsVal, b: AbsVal) -> Tuple[float, float]:
    return _dn(a.lo + b.lo), _up(a.hi + b.hi)


def _neg_iv(a: AbsVal) -> AbsVal:
    return AbsVal(-a.hi, -a.lo, a.err, a.can_inf, a.can_nan, a.fmt)


def _mul_iv(a: AbsVal, b: AbsVal) -> Tuple[float, float]:
    products = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi]
    finite = [p for p in products if not math.isnan(p)]
    if not finite:
        return -_INF, _INF
    return _dn(min(finite)), _up(max(finite))


# ----------------------------------------------------------------------
# Site records
# ----------------------------------------------------------------------
@dataclass
class SiteAbsState:
    """The abstract facts the analysis derived at one instruction."""

    site: Site
    dest: Optional[int] = None
    result: Optional[AbsVal] = None
    result_fmt: Optional[Format] = None
    operands: Dict[int, AbsVal] = field(default_factory=dict)
    #: FP operands whose value came from the input contract.
    contract_regs: Tuple[int, ...] = ()
    #: rs1 of an int->float conversion (int-contract assumption applies).
    int_contract_reg: Optional[int] = None
    #: The transfer itself introduced ``can_inf`` (no operand had it).
    new_inf: bool = False
    #: Pre-clamp exact-result magnitude when ``new_inf`` (the message).
    overflow_mag: Optional[float] = None
    #: For ``fsw``/``fmv_x_f``: the tracked value leaving the FP
    #: domain toward memory (``None`` = fresh / untracked).
    store_value: Optional[AbsVal] = None


@dataclass
class WidenedOverflow:
    """Loop-head widening pushed a register past its format's range."""

    header: int
    reg: int
    fmt: Format
    magnitude: float


@dataclass
class AbsintResult:
    """Everything one abstract-interpretation run produced."""

    cfg: CFG
    config: AbsintConfig
    sites: Dict[int, SiteAbsState]
    widened_headers: Dict[int, List[int]]
    widened_overflows: List[WidenedOverflow]
    elapsed: float = 0.0

    def state_at(self, addr: int) -> Optional[SiteAbsState]:
        return self.sites.get(addr)

    def max_error(self) -> float:
        """Largest finite error bound over every site result."""
        worst = 0.0
        for state in self.sites.values():
            if state.result is not None and math.isfinite(state.result.err):
                worst = max(worst, state.result.err)
        return worst

    def summary(self) -> Dict[str, object]:
        inf_sites = sum(1 for s in self.sites.values()
                        if s.result is not None and s.result.can_inf)
        unbounded = sum(1 for s in self.sites.values()
                        if s.result is not None
                        and not math.isfinite(s.result.err))
        return {
            "sites": len(self.sites),
            "fp_result_sites": sum(1 for s in self.sites.values()
                                   if s.result is not None),
            "can_inf_sites": inf_sites,
            "unbounded_err_sites": unbounded,
            "max_abs_err": _round6(self.max_error()),
            "widened_headers": len(self.widened_headers),
            "input_bound": self.config.input_bound,
            "trip_bound": self.config.trip_bound,
        }

    def to_payload(self) -> Dict[str, object]:
        risks = collect_risks(self)
        return {
            "summary": self.summary(),
            "risks": [r.to_dict() for r in risks],
            "sites": [
                {
                    "addr": state.site.addr,
                    "line": state.site.line,
                    "mnemonic": state.site.mnemonic,
                    "result": state.result.to_dict(),
                }
                for addr, state in sorted(self.sites.items())
                if state.result is not None
            ],
        }

    def render_text(self, top: int = 8) -> str:
        lines = [
            f"absint: {len(self.cfg.blocks)} blocks, "
            f"{len(self.widened_headers)} widened loop header(s), "
            f"input_bound={self.config.input_bound:g}, "
            f"trip_bound={self.config.trip_bound}",
        ]
        risks = collect_risks(self)
        if risks:
            lines.append(f"{len(risks)} risk(s):")
            lines.extend("  " + r.render() for r in risks)
        else:
            lines.append("no risks found")
        ranked = sorted(
            (s for s in self.sites.values()
             if s.result is not None and math.isfinite(s.result.err)
             and s.result.err > 0.0),
            key=lambda s: -s.result.err)[:top]
        if ranked:
            lines.append(f"largest error bounds (top {len(ranked)}):")
            for state in ranked:
                r = state.result
                where = (f"line {state.site.line}" if state.site.line
                         else f"{state.site.addr:#x}")
                lines.append(
                    f"  {where}: {state.site.mnemonic:<14s} "
                    f"|v| <= {r.maxmag():.6g}  err <= {r.err:.6g}")
        return "\n".join(lines)


def _round6(x: float) -> float:
    if not math.isfinite(x):
        return x
    return float(f"{x:.6g}")


# ----------------------------------------------------------------------
# Join and operand resolution
# ----------------------------------------------------------------------
def join_vals(a: AbsVal, b: AbsVal) -> AbsVal:
    if a.fmt != b.fmt:
        return top_value(None)
    lo, hi = _hull(a, b)
    return AbsVal(lo, hi, max(a.err, b.err), a.can_inf or b.can_inf,
                  a.can_nan or b.can_nan, a.fmt)


def _join_one_sided(val: AbsVal, config: AbsintConfig) -> AbsVal:
    """Join a tracked value with the contract (the untracked path)."""
    if val.fmt is None:
        return val
    c = contract_value(val.fmt, config)
    lo, hi = _hull(val, c)
    return AbsVal(lo, hi, val.err, val.can_inf, val.can_nan, val.fmt)


def join_env(a: Env, b: Env, config: AbsintConfig) -> Env:
    out: Env = {}
    for reg in set(a) | set(b):
        va, vb = a.get(reg), b.get(reg)
        if va is not None and vb is not None:
            out[reg] = va if va == vb else join_vals(va, vb)
        else:
            out[reg] = _join_one_sided(va if va is not None else vb, config)
    return out


def _resolve(env: Env, reg: int, expect: Format,
             config: AbsintConfig) -> Tuple[AbsVal, bool]:
    """Operand value at the expected format; True when contract-fresh."""
    val = env.get(reg)
    if val is None:
        return contract_value(expect, config), True
    if val.fmt == expect:
        return val, False
    if val.fmt is None:
        return top_value(expect), False
    if val.fmt[0] == expect[0]:
        if expect[1] and not val.fmt[1]:
            # Scalar consumed as a packed vector: narrow scalar writes
            # zero-extend, so the stale upper lanes are +0.0.
            lo, hi = min(val.lo, 0.0), max(val.hi, 0.0)
            return AbsVal(lo, hi, val.err, val.can_inf, val.can_nan,
                          expect), False
        # Vector consumed as a scalar: the per-lane bound covers lane 0.
        return AbsVal(val.lo, val.hi, val.err, val.can_inf, val.can_nan,
                      expect), False
    # Bits produced under one element format, consumed under another:
    # the encoding means something unrelated.  (format-mismatch lint.)
    return top_value(expect), False


# ----------------------------------------------------------------------
# Arithmetic transfer helpers
# ----------------------------------------------------------------------
def _finish(fmt: NumberFormat, lo: float, hi: float, err: float,
            can_inf: bool, can_nan: bool,
            out_fmt: Format) -> Tuple[AbsVal, bool, Optional[float]]:
    """Clamp an exact-result interval into ``fmt``; returns
    ``(value, overflowed_here, pre_clamp_magnitude)``.

    Formats without infinities (``has_inf`` false) never produce one on
    overflow: posits saturate at maxpos and MX8 materializes its NaN.
    Both lose the error bound (saturation error is unbounded), so the
    overflowed component degrades to ``err = inf`` with ``can_nan`` set
    instead of ``can_inf``.
    """
    overflow = False
    mag = max(abs(lo), abs(hi))
    if hi > fmt.max_value:
        hi = fmt.max_value
        overflow = True
    if lo < -fmt.max_value:
        lo = -fmt.max_value
        overflow = True
    if lo > hi:  # degenerate after clamping (fully out of range)
        lo, hi = -fmt.max_value, fmt.max_value
    new_inf = overflow and not can_inf
    if overflow and not fmt.has_inf:
        return (AbsVal(lo, hi, _INF, can_inf, True, out_fmt),
                new_inf, mag if new_inf else None)
    return (AbsVal(lo, hi, err, can_inf or overflow, can_nan, out_fmt),
            new_inf, mag if new_inf else None)


def _arith_flags(*vals: AbsVal) -> Tuple[bool, bool]:
    """Conservative inf/nan propagation through an arithmetic op."""
    can_inf = any(v.can_inf for v in vals)
    can_nan = any(v.can_nan for v in vals) or can_inf
    return can_inf, can_nan


def _addsub(fmt: NumberFormat, out_fmt: Format, a: AbsVal, b: AbsVal,
            round_fmt: Optional[NumberFormat] = None):
    lo, hi = _add_iv(a, b)
    rfmt = round_fmt or fmt
    mag = max(abs(lo), abs(hi))
    err = _up(_up(a.err + b.err) + _rnd(rfmt, mag + a.err + b.err))
    can_inf, can_nan = _arith_flags(a, b)
    return _finish(rfmt, lo, hi, err, can_inf, can_nan, out_fmt)


def _prod_err(a: AbsVal, b: AbsVal) -> float:
    """|a*b - a'*b'| given |a-a'| <= a.err, |b-b'| <= b.err."""
    return _up(_up(a.maxmag() * b.err) + _up(b.maxmag() * a.err)
               + _up(a.err * b.err))


def _mul(fmt: NumberFormat, out_fmt: Format, a: AbsVal, b: AbsVal,
         round_fmt: Optional[NumberFormat] = None):
    lo, hi = _mul_iv(a, b)
    rfmt = round_fmt or fmt
    pe = _prod_err(a, b)
    err = _up(pe + _rnd(rfmt, max(abs(lo), abs(hi)) + pe))
    can_inf, can_nan = _arith_flags(a, b)
    return _finish(rfmt, lo, hi, err, can_inf, can_nan, out_fmt)


def _div(fmt: NumberFormat, out_fmt: Format, a: AbsVal, b: AbsVal):
    if b.crosses_zero():
        val = top_value(out_fmt)
        return val, False, None
    blo_mag = b.minmag()
    quotients = [a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi]
    lo, hi = _dn(min(quotients)), _up(max(quotients))
    shadow_bmin = blo_mag - b.err
    if shadow_bmin <= 0.0 or not math.isfinite(b.err):
        err = _INF
    else:
        num = _up(_up(a.maxmag() * b.err) + _up(b.maxmag() * a.err))
        err = _up(num / _dn(blo_mag * shadow_bmin)
                  + _rnd(fmt, max(abs(lo), abs(hi))))
    can_inf, can_nan = _arith_flags(a, b)
    return _finish(fmt, lo, hi, err, can_inf, can_nan, out_fmt)


def _sqrt(fmt: NumberFormat, out_fmt: Format, a: AbsVal):
    can_nan = a.can_nan or a.lo < 0.0
    lo = math.sqrt(max(a.lo, 0.0))
    hi = math.sqrt(max(a.hi, 0.0))
    lo, hi = _dn(lo), _up(hi)
    # |sqrt(x) - sqrt(y)| <= sqrt(|x - y|) for x, y >= 0; tighter
    # (err / 2*sqrt(min)) when the argument stays away from zero.
    if not math.isfinite(a.err):
        err = _INF
    else:
        bound = math.sqrt(a.err) if a.err > 0.0 else 0.0
        shadow_min = a.minmag() - a.err
        if shadow_min > 0.0 and a.err > 0.0:
            bound = min(bound, a.err / (2.0 * math.sqrt(shadow_min)))
        err = _up(_up(bound) + _rnd(fmt, hi))
    return _finish(fmt, lo, hi, err, a.can_inf, can_nan, out_fmt)


def _fma(fmt: NumberFormat, out_fmt: Format, a: AbsVal, b: AbsVal,
         c: AbsVal, negate_product: bool, negate_addend: bool,
         round_fmt: Optional[NumberFormat] = None):
    """Fused a*b +/- c with a single rounding in ``round_fmt``."""
    plo, phi = _mul_iv(a, b)
    if negate_product:
        plo, phi = -phi, -plo
    clo, chi = (-c.hi, -c.lo) if negate_addend else (c.lo, c.hi)
    lo, hi = _dn(plo + clo), _up(phi + chi)
    rfmt = round_fmt or fmt
    pe = _prod_err(a, b)
    err = _up(_up(pe + c.err) + _rnd(rfmt, max(abs(lo), abs(hi)) + pe
                                     + c.err))
    can_inf, can_nan = _arith_flags(a, b, c)
    return _finish(rfmt, lo, hi, err, can_inf, can_nan, out_fmt)


def _dotp(out_fmt: Format, acc: AbsVal, a: AbsVal, b: AbsVal,
          lanes: int):
    """vfdotpex: acc + sum of ``lanes`` products, one binary32 rounding."""
    plo, phi = _mul_iv(a, b)
    # Each of the ``lanes`` products lies in [plo, phi], so their exact
    # sum lies in [lanes*plo, lanes*phi].
    lo = _dn(acc.lo + lanes * plo)
    hi = _up(acc.hi + lanes * phi)
    pe = _up(lanes * _prod_err(a, b))
    err = _up(_up(acc.err + pe) + _rnd(_B32, max(abs(lo), abs(hi))
                                       + acc.err + pe))
    can_inf, can_nan = _arith_flags(acc, a, b)
    return _finish(_B32, lo, hi, err, can_inf, can_nan, out_fmt)


def _selection(a: AbsVal, b: AbsVal, out_fmt: Format, minimum: bool):
    """fmin/fmax: 1-Lipschitz selection in each argument."""
    if minimum:
        lo, hi = min(a.lo, b.lo), min(a.hi, b.hi)
    else:
        lo, hi = max(a.lo, b.lo), max(a.hi, b.hi)
    # IEEE minNum/maxNum return the non-NaN operand, so a maybe-NaN
    # operand means the result can be the *other* operand unclipped --
    # widen to its full interval.  A NaN result needs both to be NaN.
    if a.can_nan:
        lo, hi = min(lo, b.lo), max(hi, b.hi)
    if b.can_nan:
        lo, hi = min(lo, a.lo), max(hi, a.hi)
    return AbsVal(lo, hi, max(a.err, b.err), a.can_inf or b.can_inf,
                  a.can_nan and b.can_nan, out_fmt), False, None


def _sign_inject(a: AbsVal, out_fmt: Format):
    m = a.maxmag()
    return AbsVal(-m, m, a.err, a.can_inf, a.can_nan, out_fmt), False, None


def _convert(dst: NumberFormat, out_fmt: Format, a: AbsVal):
    err = _up(a.err + _rnd(dst, a.maxmag() + a.err))
    return _finish(dst, a.lo, a.hi, err, a.can_inf, a.can_nan, out_fmt)


_SCALAR_BINOPS = {"fadd", "fsub", "fmul", "fdiv", "fmin", "fmax",
                  "fsgnj", "fsgnjn", "fsgnjx"}
_VECTOR_BINOPS = {"vfadd", "vfsub", "vfmul", "vfdiv", "vfmin", "vfmax",
                  "vfsgnj", "vfsgnjn", "vfsgnjx"}
_FMA_KINDS = {"fmadd": (False, False), "fmsub": (False, True),
              "fnmsub": (True, False), "fnmadd": (True, True)}
_INT_RESULT_KINDS = {"feq", "flt", "fle", "vfeq", "vflt", "vfle",
                     "fclass", "fcvt_w_f", "fcvt_wu_f", "vfcvt_x_f",
                     "fmv_x_f"}
_STORE_KINDS = {"fsw", "sw", "sh", "sb"}


# ----------------------------------------------------------------------
# The per-site transfer function
# ----------------------------------------------------------------------
def transfer_site(site: Site, env: Env, config: AbsintConfig,
                  sink: Optional[Dict[int, SiteAbsState]] = None) -> None:
    """Apply one instruction to ``env`` (mutated in place).

    With ``sink``, also record a :class:`SiteAbsState` for the site.
    """
    instr = site.instr
    state = SiteAbsState(site=site) if sink is not None else None
    if sink is not None:
        sink[site.addr] = state
    if instr is None:
        env.clear()  # undecodable word: no facts survive
        return
    spec = instr.spec

    # Calls clobber the caller-saved half of the merged register file.
    if spec.cf in ("jump", "ijump") and instr.rd != 0:
        for reg in list(env):
            if reg not in CALLEE_SAVED:
                env.pop(reg)
        return

    if spec.kind in _STORE_KINDS:
        # smallFloat values live in the integer register file, so a
        # plain sb/sh/sw is how a tracked value reaches memory; record
        # it for the error-budget check (None = not an FP value).
        if state is not None:
            state.store_value = env.get(instr.rs2)
        return

    if spec.fp_fmt is None:
        for reg in regs_written(instr):
            env.pop(reg, None)
        return

    kind = spec.kind
    elem = spec.fp_fmt
    vec = bool(spec.vec)
    fmt = registry.by_suffix(elem)

    def resolve(reg: int, expect: Format) -> AbsVal:
        val, fresh = _resolve(env, reg, expect, config)
        if state is not None:
            state.operands[reg] = val
            if fresh:
                state.contract_regs = state.contract_regs + (reg,)
        return val

    def write(reg: int, packed) -> None:
        val, new_inf, mag = packed
        env[reg] = val
        if state is not None:
            state.dest = reg
            state.result = val
            state.result_fmt = val.fmt
            state.new_inf = new_inf
            state.overflow_mag = mag

    if kind == "flw":
        env.pop(instr.rd, None)  # loads carry no format/value evidence
        return
    if kind in _INT_RESULT_KINDS:
        if kind == "fmv_x_f" and state is not None:
            state.store_value = env.get(instr.rs1)
        if instr.rd != 0:
            env.pop(instr.rd, None)
        return
    if kind == "fmv_f_x":
        env.pop(instr.rd, None)  # raw bits: no value evidence
        return

    out_fmt = result_format(instr)
    if out_fmt is None:  # future FP kinds with no known result format
        for reg in regs_written(instr):
            env.pop(reg, None)
        return

    if kind in ("fcvt_f_w", "fcvt_f_wu"):
        bound = float(max(config.input_bound, config.trip_bound))
        if state is not None:
            state.int_contract_reg = instr.rs1
        lo = 0.0 if kind == "fcvt_f_wu" else -bound
        write(instr.rd, _finish(fmt, lo, bound, _rnd(fmt, bound),
                                False, False, out_fmt))
        return
    if kind == "vfcvt_f_x":
        bound = float(1 << (fmt.width - 1))  # packed int lanes
        write(instr.rd, _finish(fmt, -bound, bound, _rnd(fmt, bound),
                                False, False, out_fmt))
        return
    if kind in ("fcvt_f2f", "vfcvt_f2f"):
        src = resolve(instr.rs1, (spec.src_fmt or elem, vec))
        write(instr.rd, _convert(fmt, out_fmt, src))
        return
    if kind in ("fsqrt", "vfsqrt"):
        a = resolve(instr.rs1, (elem, vec))
        write(instr.rd, _sqrt(fmt, out_fmt, a))
        return
    if kind in _FMA_KINDS:
        a = resolve(instr.rs1, (elem, False))
        b = resolve(instr.rs2, (elem, False))
        c = resolve(instr.rs3, (elem, False))
        np_, na_ = _FMA_KINDS[kind]
        write(instr.rd, _fma(fmt, out_fmt, a, b, c, np_, na_))
        return
    if kind == "fmulex":
        src = registry.by_suffix(spec.src_fmt or elem)
        a = resolve(instr.rs1, (src.suffix, False))
        b = resolve(instr.rs2, (src.suffix, False))
        write(instr.rd, _mul(src, out_fmt, a, b, round_fmt=_B32))
        return
    if kind == "fmacex":
        src = registry.by_suffix(spec.src_fmt or elem)
        a = resolve(instr.rs1, (src.suffix, False))
        b = resolve(instr.rs2, (src.suffix, False))
        acc = resolve(instr.rd, ("s", False))
        write(instr.rd, _fma(src, out_fmt, a, b, acc, False, False,
                             round_fmt=_B32))
        return
    if kind == "vfdotpex":
        src = registry.by_suffix(spec.src_fmt or elem)
        a = resolve(instr.rs1, (src.suffix, True))
        b = resolve(instr.rs2, (src.suffix, not spec.repl))
        acc = resolve(instr.rd, ("s", False))
        lanes = _FLEN // src.width
        write(instr.rd, _dotp(out_fmt, acc, a, b, lanes))
        return
    if kind == "vfdotpmx":
        # Shared-exponent block dot product: each operand register holds
        # a scale byte plus lanes.  The decoded lane values fall under
        # the input contract (blocks arrive via integer loads, so no
        # tracked history exists); one binary32 rounding at the end.
        src = registry.by_suffix(spec.src_fmt or elem)
        a = resolve(instr.rs1, (src.suffix, True))
        b = resolve(instr.rs2, (src.suffix, True))
        acc = resolve(instr.rd, ("s", False))
        lanes = max(1, (_FLEN - 8) // src.width)
        write(instr.rd, _dotp(out_fmt, acc, a, b, lanes))
        return
    if kind in ("vfcpka", "vfcpkb"):
        a = resolve(instr.rs1, ("s", False))
        b = resolve(instr.rs2, ("s", False))
        ca, _, _ = _convert(fmt, out_fmt, a)
        cb, _, _ = _convert(fmt, out_fmt, b)
        packed = join_vals(ca, cb)
        lanes = _FLEN // fmt.width
        if lanes > 2:  # untouched lanes keep the old register contents
            old, _ = _resolve(env, instr.rd, out_fmt, config)
            packed = join_vals(packed, old)
        new_inf = packed.can_inf and not (a.can_inf or b.can_inf)
        env[instr.rd] = packed
        if state is not None:
            state.dest = instr.rd
            state.result = packed
            state.result_fmt = out_fmt
            state.new_inf = new_inf
            state.overflow_mag = (max(a.maxmag(), b.maxmag())
                                  if new_inf else None)
        return
    if kind == "vfmac":
        a = resolve(instr.rs1, (elem, True))
        b = resolve(instr.rs2, (elem, not spec.repl))
        acc = resolve(instr.rd, (elem, True))
        write(instr.rd, _fma(fmt, out_fmt, a, b, acc, False, False))
        return
    if kind in _SCALAR_BINOPS or kind in _VECTOR_BINOPS:
        a = resolve(instr.rs1, (elem, vec))
        b = resolve(instr.rs2, (elem, vec and not spec.repl))
        base = kind[2:] if vec else kind[1:]  # strip "vf"/"f"
        if base == "add":
            write(instr.rd, _addsub(fmt, out_fmt, a, b))
        elif base == "sub":
            write(instr.rd, _addsub(fmt, out_fmt, a, _neg_iv(b)))
        elif base == "mul":
            write(instr.rd, _mul(fmt, out_fmt, a, b))
        elif base == "div":
            write(instr.rd, _div(fmt, out_fmt, a, b))
        elif base in ("min", "max"):
            write(instr.rd, _selection(a, b, out_fmt, base == "min"))
        else:  # sgnj / sgnjn / sgnjx
            resolve(instr.rs2, (elem, vec and not spec.repl))
            write(instr.rd, _sign_inject(a, out_fmt))
        return

    # Unknown FP kind: drop facts for whatever it writes.
    for reg in regs_written(instr):
        env.pop(reg, None)


def _transfer_block(block: BasicBlock, env_in: Env,
                    config: AbsintConfig,
                    sink: Optional[Dict[int, SiteAbsState]] = None) -> Env:
    env = dict(env_in)
    for site in block.sites:
        transfer_site(site, env, config, sink)
    return env


# ----------------------------------------------------------------------
# Widening at loop headers
# ----------------------------------------------------------------------
class _CompWiden:
    """Delta-extrapolation state for one (register, component)."""

    __slots__ = ("prev", "passes", "hold", "allow", "base", "rounds")

    def __init__(self) -> None:
        self.prev: Optional[float] = None
        self.passes = 0
        self.hold: Optional[float] = None
        self.allow = 0.0
        self.base = 0.0
        self.rounds = 0

    def step(self, x: float, trip: int) -> float:
        if not math.isfinite(x):
            self.hold = _INF
            return _INF
        if self.hold is not None:
            if math.isinf(self.hold):
                return _INF
            inc = x - self.hold
            if inc <= self.allow * 1.01 + _TINY:
                return self.hold  # extrapolation absorbed the growth
            self.rounds += 1
            if self.rounds > _MAX_WIDEN_ROUNDS:
                self.hold = _INF  # accelerating: no linear bound exists
                return _INF
            self.allow = inc
            self.hold = self.base + 1.05 * trip * inc
            return self.hold
        if self.prev is None:
            self.prev = x
            return x
        delta = x - self.prev
        self.prev = x
        if delta <= _TINY:
            return x  # converging on its own
        self.passes += 1
        if self.passes < _JOIN_PASSES:
            return x
        # Linear growth observed: assume <= trip iterations (the trip
        # contract) and extrapolate, with margin for the tolerance the
        # hold check grants later arrivals.
        self.base = x
        self.allow = delta
        self.hold = x + 1.05 * trip * delta
        return self.hold


class _HeaderWiden:
    """Widening state for every register reaching one loop header."""

    def __init__(self, config: AbsintConfig):
        self.config = config
        self.comps: Dict[Tuple[int, str], _CompWiden] = {}
        self.fmt_seen: Dict[int, Optional[Format]] = {}
        self.overflows: Dict[int, float] = {}
        self.touched: Set[int] = set()

    def _comp(self, reg: int, name: str) -> _CompWiden:
        key = (reg, name)
        if key not in self.comps:
            self.comps[key] = _CompWiden()
        return self.comps[key]

    def apply(self, env: Env) -> Env:
        trip = self.config.trip_bound
        out: Env = {}
        for reg, val in env.items():
            if self.fmt_seen.get(reg, val.fmt) != val.fmt:
                # Format changed between passes: restart this register.
                for name in ("hi", "lo", "err"):
                    self.comps.pop((reg, name), None)
            self.fmt_seen[reg] = val.fmt
            hi = self._comp(reg, "hi").step(val.hi, trip)
            lo = -self._comp(reg, "lo").step(-val.lo, trip)
            err = self._comp(reg, "err").step(val.err, trip)
            can_inf, can_nan = val.can_inf, val.can_nan
            widened = (hi != val.hi or lo != val.lo or err != val.err)
            if val.fmt is not None:
                fmax = _float_format(val.fmt).max_value
                if hi > fmax or lo < -fmax:
                    self.overflows[reg] = max(
                        self.overflows.get(reg, 0.0),
                        max(abs(lo), abs(hi)))
                    hi = min(hi, fmax)
                    lo = max(lo, -fmax)
                    can_inf = True
            if widened:
                self.touched.add(reg)
            out[reg] = AbsVal(lo, hi, err, can_inf, can_nan, val.fmt)
        return out


# ----------------------------------------------------------------------
# The fixpoint solver
# ----------------------------------------------------------------------
def analyze_cfg(cfg: CFG,
                config: Optional[AbsintConfig] = None) -> AbsintResult:
    """Run the abstract interpretation over an already-built CFG."""
    started = time.monotonic()
    config = config or AbsintConfig()
    headers = {loop.header for loop in cfg.natural_loops()}
    boundary = set(cfg.entries) | {callee for _, callee in cfg.calls}
    widen: Dict[int, _HeaderWiden] = {h: _HeaderWiden(config)
                                      for h in headers}

    env_in: Dict[int, Env] = {}
    env_out: Dict[int, Env] = {}
    worklist: List[int] = list(cfg.order)
    queued = set(worklist)
    iterations = 0
    limit = max(256, 64 * len(cfg.order) * (_MAX_WIDEN_ROUNDS + 4))
    while worklist:
        iterations += 1
        if iterations > limit:  # pragma: no cover - safety net
            break
        start = worklist.pop(0)
        queued.discard(start)
        block = cfg.blocks[start]
        incoming: Optional[Env] = {} if start in boundary else None
        for pred in block.preds:
            contrib = env_out.get(pred)
            if contrib is None:
                continue
            incoming = dict(contrib) if incoming is None else \
                join_env(incoming, contrib, config)
        if incoming is None:
            incoming = {}
        if start in headers:
            incoming = widen[start].apply(incoming)
        env_in[start] = incoming
        outgoing = _transfer_block(block, incoming, config)
        if outgoing != env_out.get(start):
            env_out[start] = outgoing
            for succ in block.succs:
                if succ not in queued:
                    worklist.append(succ)
                    queued.add(succ)

    # Recording walk over the solved per-block inputs.
    sites: Dict[int, SiteAbsState] = {}
    for start in cfg.order:
        _transfer_block(cfg.blocks[start], env_in.get(start, {}),
                        config, sink=sites)

    widened_headers = {h: sorted(w.touched) for h, w in widen.items()
                       if w.touched}
    overflows = []
    for header in sorted(widen):
        w = widen[header]
        for reg in sorted(w.overflows):
            fmt = w.fmt_seen.get(reg)
            if fmt is not None:
                overflows.append(WidenedOverflow(
                    header=header, reg=reg, fmt=fmt,
                    magnitude=w.overflows[reg]))
    return AbsintResult(cfg=cfg, config=config, sites=sites,
                        widened_headers=widened_headers,
                        widened_overflows=overflows,
                        elapsed=time.monotonic() - started)


def analyze_program(
    program: Program,
    entries: Optional[Sequence[Union[str, int]]] = None,
    config: Optional[AbsintConfig] = None,
) -> AbsintResult:
    """Build the CFG and run the abstract interpretation."""
    return analyze_cfg(build_cfg(program, entries=entries), config)


# ----------------------------------------------------------------------
# Risk extraction (shared by the lint checks and ``repro analyze``)
# ----------------------------------------------------------------------
def _fmt_name(elem: str) -> str:
    """Human name of a format suffix, from the registry."""
    return registry.by_suffix(elem).name

#: Kinds whose overflow suggests the expanding accumulate instead.
_EXPANDING_FIX = {"vfmac": "vfdotpex.s.{fmt}", "vfadd": "vfdotpex.s.{fmt}",
                  "fadd": "fmacex.s.{fmt}", "fmadd": "fmacex.s.{fmt}"}


@dataclass
class Risk:
    """One risk record, with enough structure for lints and reports."""

    kind: str  # one of :data:`RISK_KINDS`
    site: Site
    message: str
    suggestion: Optional[str] = None
    magnitude: Optional[float] = None
    error: Optional[float] = None
    #: Human name of the format at risk (overflow/underflow risks).
    fmt: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "kind": self.kind,
            "addr": self.site.addr,
            "line": self.site.line,
            "mnemonic": self.site.mnemonic,
            "message": self.message,
        }
        if self.fmt is not None:
            out["fmt"] = self.fmt
        if self.suggestion is not None:
            out["suggestion"] = self.suggestion
        if self.magnitude is not None:
            out["magnitude"] = _round6(self.magnitude)
        if self.error is not None and math.isfinite(self.error):
            out["error"] = _round6(self.error)
        return out

    def render(self) -> str:
        where = (f"line {self.site.line}" if self.site.line is not None
                 else f"{self.site.addr:#x}")
        text = f"{where}: [{self.kind}] {self.message}"
        if self.suggestion:
            text += f"  (suggestion: {self.suggestion})"
        return text


def _overflow_suggestion(site: Site, elem: str) -> Optional[str]:
    template = _EXPANDING_FIX.get(site.kind)
    if template is not None:
        return template.format(fmt=elem)
    if elem in ("h", "b"):
        return ("compute in binary32, or binary16alt for its "
                "binary32-like exponent range")
    return None


def collect_risks(result: AbsintResult,
                  reachable: Optional[Set[int]] = None) -> List[Risk]:
    """Extract overflow/underflow/cancellation/budget risks."""
    cfg = result.cfg
    config = result.config
    if reachable is None:
        reachable = cfg.reachable()
    risks: List[Risk] = []
    cancel_best: Dict[Optional[str], Tuple[float, Risk, int]] = {}

    overflow_sites: Set[int] = set()
    loop_bodies = {header: set() for header in result.widened_headers}
    for loop in cfg.merged_loops():
        if loop.header in loop_bodies:
            loop_bodies[loop.header] |= loop.body

    for start in cfg.order:
        if start not in reachable:
            continue
        for site in cfg.blocks[start].sites:
            state = result.sites.get(site.addr)
            if state is None or site.instr is None:
                continue
            res = state.result
            fmt = state.result_fmt
            if res is not None and fmt is not None:
                elem = fmt[0]
                ffmt = _float_format(fmt)
                if state.new_inf:
                    overflow_sites.add(site.addr)
                    outcome = ("the result can round to infinity"
                               if ffmt.has_inf else
                               "the result saturates or becomes NaN "
                               "(no infinities in this format)")
                    risks.append(Risk(
                        kind="overflow", site=site,
                        message=(
                            f"result magnitude may reach "
                            f"{state.overflow_mag:.4g}, beyond "
                            f"{_fmt_name(elem)}'s largest finite value "
                            f"{ffmt.max_value:g}; {outcome}"),
                        suggestion=_overflow_suggestion(site, elem),
                        magnitude=state.overflow_mag,
                        fmt=_fmt_name(elem)))
                mag = res.maxmag()
                if 0.0 < mag < ffmt.min_normal_value:
                    risks.append(Risk(
                        kind="underflow", site=site,
                        message=(
                            f"every possible result magnitude "
                            f"(<= {mag:.4g}) is below {_fmt_name(elem)}'s "
                            f"smallest normal {ffmt.min_normal_value:g}; "
                            f"the value is subnormal or flushed to zero"),
                        magnitude=mag, fmt=_fmt_name(elem)))
            if site.kind in ("fadd", "fsub", "vfadd", "vfsub") \
                    and state.operands:
                ops = [state.operands.get(site.instr.rs1),
                       state.operands.get(site.instr.rs2)]
                if all(o is not None for o in ops):
                    a, b = ops
                    carried = a.err + b.err
                    if site.kind in ("fsub", "vfsub"):
                        b = _neg_iv(b)
                    lo, hi = _add_iv(a, b)
                    if carried > 0.0 and math.isfinite(carried) \
                            and lo <= 0.0 <= hi \
                            and a.minmag() + a.err > 0.0 \
                            and b.minmag() + b.err > 0.0:
                        risk = Risk(
                            kind="cancellation", site=site,
                            message=(
                                f"operands carrying accumulated rounding "
                                f"error (<= {carried:.3g}) may cancel to "
                                f"a result near zero, where that error "
                                f"dominates the value"),
                            error=carried)
                        fn = cfg.function_of(site.addr)
                        best = cancel_best.get(fn)
                        count = 1 if best is None else best[2] + 1
                        if best is None or carried > best[0]:
                            cancel_best[fn] = (carried, risk, count)
                        else:
                            cancel_best[fn] = (best[0], best[1], count)
            if (config.error_budget is not None
                    and (site.kind in _STORE_KINDS
                         or site.kind == "fmv_x_f")):
                stored = state.store_value
                if stored is not None:
                    denom = max(stored.maxmag(), _TINY)
                    rel = stored.err / denom
                    if rel > config.error_budget:
                        risks.append(Risk(
                            kind="budget", site=site,
                            message=(
                                f"stored value's relative error bound "
                                f"{rel:.3g} exceeds the configured "
                                f"budget {config.error_budget:g}"),
                            error=stored.err))

    # Widening-level overflows: attribute each to the loop-body site(s)
    # that write the overflowing register (the accumulation itself).
    for overflow in result.widened_overflows:
        body = loop_bodies.get(overflow.header, set())
        for start in sorted(body & reachable):
            block = cfg.blocks.get(start)
            if block is None:
                continue
            for site in block.sites:
                state = result.sites.get(site.addr)
                if state is None or state.dest != overflow.reg \
                        or state.result_fmt != overflow.fmt \
                        or site.addr in overflow_sites:
                    continue
                overflow_sites.add(site.addr)
                elem = overflow.fmt[0]
                ffmt = _float_format(overflow.fmt)
                outcome = ("the accumulator can round to infinity"
                           if ffmt.has_inf else
                           "the accumulator saturates or becomes NaN "
                           "(no infinities in this format)")
                risks.append(Risk(
                    kind="overflow", site=site,
                    message=(
                        f"accumulated magnitude may reach "
                        f"{overflow.magnitude:.4g} over "
                        f"{config.trip_bound} loop iterations, beyond "
                        f"{_fmt_name(elem)}'s largest finite value "
                        f"{ffmt.max_value:g}; {outcome}"),
                    suggestion=_overflow_suggestion(site, elem),
                    magnitude=overflow.magnitude,
                    fmt=_fmt_name(elem)))

    for count_key in sorted(cancel_best, key=lambda k: (k is None, k)):
        carried, risk, total = cancel_best[count_key]
        if total > 1:
            risk.message += (f" ({total - 1} smaller cancellation "
                             f"site(s) in the same function elided)")
        risks.append(risk)

    risks.sort(key=lambda r: (RISK_KINDS.index(r.kind),
                              r.site.line or 0, r.site.addr))
    return risks
