"""Control-flow graph construction over assembled :class:`Program` objects.

The builder decodes the text section back into :class:`Instr` records
(the assembler emits one 4-byte word per instruction, so decode is a
faithful inverse -- a property the round-trip tests in
``tests/isa/test_roundtrip.py`` pin down), splits it into basic blocks
at branch/jump boundaries and targets, and recovers:

* intra-procedural edges (branch taken/fall-through, unconditional
  jumps),
* call-graph edges (``jal``/``jalr`` with a link register),
* entry points (function symbols), and
* unreachable blocks, dominators and natural loops.

Control-flow classification comes from :attr:`InstrSpec.cf` metadata,
not from mnemonic string matching, so new control-flow instructions
registered in :mod:`repro.isa` are picked up automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..isa.assembler import Program
from ..isa.instructions import Instr, UnknownInstruction, decode

#: Block terminator classes a :class:`BasicBlock` can end with.
TERMINATORS = ("fallthrough", "branch", "jump", "call", "return",
               "indirect-call", "indirect-jump", "halt", "undecodable",
               "end-of-text")

#: x1 is the standard RISC-V link register.
LINK_REG = 1


@dataclass
class Site:
    """One decoded instruction together with its static location."""

    addr: int
    word: int
    instr: Optional[Instr]  #: ``None`` when the word does not decode
    line: Optional[int]  #: 1-based assembly source line, when known

    @property
    def mnemonic(self) -> str:
        return self.instr.mnemonic if self.instr is not None else ".word"

    @property
    def kind(self) -> str:
        return self.instr.kind if self.instr is not None else ""


@dataclass
class BasicBlock:
    """A maximal straight-line run of instructions."""

    start: int
    sites: List[Site] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)
    terminator: str = "fallthrough"
    labels: List[str] = field(default_factory=list)

    @property
    def last(self) -> Optional[Site]:
        return self.sites[-1] if self.sites else None

    @property
    def end(self) -> int:
        """First address past the block."""
        return self.start + 4 * len(self.sites)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"BasicBlock({self.start:#x}..{self.end:#x}, "
                f"{self.terminator}, succs={[hex(s) for s in self.succs]})")


@dataclass
class Loop:
    """A natural loop: a back edge and the blocks it encloses."""

    header: int
    back_edge: Tuple[int, int]
    body: Set[int]

    def __contains__(self, block_start: int) -> bool:
        return block_start in self.body


class CFG:
    """Basic blocks, edges and derived structure for one program."""

    def __init__(self, program: Program, blocks: Dict[int, BasicBlock],
                 entries: List[int], calls: List[Tuple[int, int]]):
        self.program = program
        self.blocks = blocks
        self.order = sorted(blocks)
        #: Entry-point block addresses (function symbols / explicit roots).
        self.entries = entries
        #: ``(call-site address, callee address)`` pairs.
        self.calls = calls
        self._doms: Optional[Dict[int, Set[int]]] = None

    # ------------------------------------------------------------------
    def block_at(self, start: int) -> BasicBlock:
        return self.blocks[start]

    def block_of(self, addr: int) -> Optional[BasicBlock]:
        """The block containing instruction address ``addr``."""
        for start in self.order:
            block = self.blocks[start]
            if block.start <= addr < block.end:
                return block
        return None

    def sites(self) -> Iterable[Site]:
        for start in self.order:
            yield from self.blocks[start].sites

    def function_of(self, addr: int) -> Optional[str]:
        """Name of the function (entry symbol) an address falls under."""
        best: Tuple[int, Optional[str]] = (-1, None)
        for name, sym_addr in self.program.symbols.items():
            if sym_addr <= addr and sym_addr > best[0] and \
                    sym_addr in self.entries:
                best = (sym_addr, name)
        return best[1]

    # ------------------------------------------------------------------
    def reachable(self) -> Set[int]:
        """Blocks reachable from any entry, following CFG + call edges."""
        call_targets = {callee for _, callee in self.calls}
        worklist = [e for e in self.entries if e in self.blocks]
        worklist += [c for c in call_targets if c in self.blocks]
        seen: Set[int] = set()
        while worklist:
            start = worklist.pop()
            if start in seen:
                continue
            seen.add(start)
            worklist.extend(s for s in self.blocks[start].succs
                            if s not in seen)
        return seen

    def unreachable_blocks(self) -> List[BasicBlock]:
        live = self.reachable()
        return [self.blocks[s] for s in self.order if s not in live]

    # ------------------------------------------------------------------
    def dominators(self) -> Dict[int, Set[int]]:
        """Iterative dominator sets over the reachable subgraph.

        A virtual super-entry precedes every root, so multi-function
        programs are handled in one pass.
        """
        if self._doms is not None:
            return self._doms
        live = self.reachable()
        ordered = [s for s in self.order if s in live]
        roots = set(self.entries) | {c for _, c in self.calls}
        roots &= live
        universe = set(ordered)
        doms: Dict[int, Set[int]] = {}
        for start in ordered:
            doms[start] = {start} if start in roots else set(universe)
        changed = True
        while changed:
            changed = False
            for start in ordered:
                if start in roots:
                    continue
                preds = [p for p in self.blocks[start].preds if p in live]
                if preds:
                    new = set.intersection(*(doms[p] for p in preds))
                else:
                    new = set()
                new = new | {start}
                if new != doms[start]:
                    doms[start] = new
                    changed = True
        self._doms = doms
        return doms

    def back_edges(self) -> List[Tuple[int, int]]:
        """Edges ``u -> h`` where the head dominates the tail."""
        doms = self.dominators()
        edges = []
        for start, dom in doms.items():
            for succ in self.blocks[start].succs:
                if succ in dom and succ in doms:
                    edges.append((start, succ))
        return edges

    def natural_loops(self) -> List[Loop]:
        """One :class:`Loop` per back edge (bodies may overlap/nest)."""
        loops = []
        for tail, header in self.back_edges():
            body = {header, tail}
            stack = [tail]
            while stack:
                node = stack.pop()
                for pred in self.blocks[node].preds:
                    if pred not in body and node != header:
                        body.add(pred)
                        stack.append(pred)
            loops.append(Loop(header=header, back_edge=(tail, header),
                              body=body))
        return loops

    # ------------------------------------------------------------------
    # Attribution helpers (the profiler's PC -> block -> loop mapping)
    # ------------------------------------------------------------------
    def pc_block_map(self) -> Dict[int, int]:
        """Instruction address -> start of its containing block.

        A dictionary (rather than the linear :meth:`block_of` scan) so
        per-retired-instruction consumers -- the cycle-attribution
        profiler foremost -- pay one hash lookup per step.
        """
        mapping: Dict[int, int] = {}
        for start in self.order:
            for site in self.blocks[start].sites:
                mapping[site.addr] = start
        return mapping

    def merged_loops(self) -> List[Loop]:
        """Natural loops with same-header bodies unioned.

        A loop with two back edges (e.g. a ``continue`` inside it)
        yields two overlapping natural loops; for attribution purposes
        they are one loop.  The representative back edge kept is the
        first in :meth:`back_edges` order.
        """
        by_header: Dict[int, Loop] = {}
        for loop in self.natural_loops():
            kept = by_header.get(loop.header)
            if kept is None:
                by_header[loop.header] = Loop(
                    header=loop.header, back_edge=loop.back_edge,
                    body=set(loop.body))
            else:
                kept.body |= loop.body
        return [by_header[h] for h in sorted(by_header)]

    def loop_attribution(self) -> Tuple[Dict[int, Optional[int]],
                                        Dict[int, int]]:
        """Innermost-loop header and nesting depth per block.

        Returns ``(innermost, depth)``: ``innermost[block]`` is the
        header of the smallest merged loop whose body contains the
        block (``None`` outside any loop), and ``depth[block]`` counts
        the distinct loops containing it.  This is how profile cycles
        roll up to loop-level hot spots without double counting -- each
        block's cycles are *self* cycles of exactly one loop.
        """
        loops = self.merged_loops()
        innermost: Dict[int, Optional[int]] = {}
        depth: Dict[int, int] = {}
        for start in self.order:
            containing = [lp for lp in loops if start in lp.body]
            depth[start] = len(containing)
            if containing:
                innermost[start] = min(
                    containing, key=lambda lp: (len(lp.body), lp.header)
                ).header
            else:
                innermost[start] = None
        return innermost, depth


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def _decode_sites(program: Program) -> List[Site]:
    sites = []
    for index, word in enumerate(program.words):
        addr = program.text_base + 4 * index
        line = program.lines[index] if index < len(program.lines) else None
        try:
            instr = decode(word)
        except UnknownInstruction:
            instr = None
        sites.append(Site(addr=addr, word=word, instr=instr, line=line))
    return sites


def _classify_terminator(site: Site) -> Tuple[str, List[int]]:
    """Terminator class and static successor addresses of one site."""
    instr = site.instr
    if instr is None:
        return "undecodable", []
    cf = instr.spec.cf
    fallthrough = site.addr + 4
    if cf == "branch":
        target = site.addr + instr.imm
        return "branch", [target, fallthrough]
    if cf == "jump":  # jal
        target = site.addr + instr.imm
        if instr.rd == 0:
            return "jump", [target]
        return "call", [fallthrough]
    if cf == "ijump":  # jalr
        if instr.rd != 0:
            return "indirect-call", [fallthrough]
        if instr.rs1 == LINK_REG and instr.imm == 0:
            return "return", []
        return "indirect-jump", []
    if cf == "halt":
        return "halt", []
    return "fallthrough", [fallthrough]


def build_cfg(program: Program,
              entries: Optional[Sequence[Union[str, int]]] = None) -> CFG:
    """Build a :class:`CFG` from an assembled program.

    ``entries`` names the program's entry points (symbols or addresses).
    When omitted, entry points are inferred: the text base, every call
    target, and every text symbol that is never the target of a local
    branch or jump (loop labels are branch targets; function labels are
    not).
    """
    sites = _decode_sites(program)
    by_addr = {site.addr: site for site in sites}
    text_end = program.text_base + 4 * len(sites)

    def in_text(addr: int) -> bool:
        return program.text_base <= addr < text_end and addr % 4 == 0

    # Pass 1: leaders, branch targets, call edges.
    leaders: Set[int] = set()
    branch_targets: Set[int] = set()
    calls: List[Tuple[int, int]] = []
    if sites:
        leaders.add(program.text_base)
    for site in sites:
        terminator, succs = _classify_terminator(site)
        if terminator == "call" and site.instr is not None:
            target = site.addr + site.instr.imm
            if in_text(target):
                calls.append((site.addr, target))
                leaders.add(target)
        if terminator != "fallthrough":
            leaders.add(site.addr + 4)
            for succ in succs:
                if succ != site.addr + 4 and in_text(succ):
                    leaders.add(succ)
                    branch_targets.add(succ)
    for addr in program.symbols.values():
        if in_text(addr):
            leaders.add(addr)
    leaders = {addr for addr in leaders if addr in by_addr}

    # Pass 2: carve blocks.
    labels_at: Dict[int, List[str]] = {}
    for name, addr in program.symbols.items():
        labels_at.setdefault(addr, []).append(name)
    blocks: Dict[int, BasicBlock] = {}
    current: Optional[BasicBlock] = None
    for site in sites:
        if site.addr in leaders or current is None:
            current = BasicBlock(start=site.addr,
                                 labels=sorted(labels_at.get(site.addr, [])))
            blocks[site.addr] = current
        current.sites.append(site)
        terminator, _ = _classify_terminator(site)
        if terminator != "fallthrough":
            current.terminator = terminator
            current = None

    # Pass 3: edges.
    for block in blocks.values():
        last = block.last
        assert last is not None
        terminator, succs = _classify_terminator(last)
        if terminator == "fallthrough" and last.addr + 4 >= text_end:
            block.terminator = "end-of-text"
            succs = []
        block.succs = [s for s in succs if s in blocks]
        for succ in block.succs:
            blocks[succ].preds.append(block.start)

    # Entry points.
    roots: List[int] = []
    if entries is not None:
        for entry in entries:
            addr = (program.address_of(entry) if isinstance(entry, str)
                    else entry)
            if addr in blocks:
                roots.append(addr)
    else:
        call_targets = {callee for _, callee in calls}
        for name, addr in sorted(program.symbols.items(), key=lambda s: s[1]):
            if addr in blocks and (addr in call_targets
                                   or addr not in branch_targets):
                roots.append(addr)
        if program.text_base in blocks and program.text_base not in roots:
            roots.append(program.text_base)
    if not roots and sites:
        roots = [sites[0].addr]

    return CFG(program, blocks, entries=sorted(set(roots)), calls=calls)
