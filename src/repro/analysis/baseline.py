"""Lint baseline over every built-in kernel build configuration.

``compute_baseline`` compiles each benchmark kernel in every valid
(type x vectorization) configuration, runs the full lint pass over the
assembled output and returns a deterministic summary: per-configuration
finding counts by check and severity, plus each finding's identity
(check, line, suggestion).  The committed snapshot lives at
``benchmarks/results/lint_baseline.json``; CI regenerates it and the
regression test in ``tests/analysis/test_baseline.py`` diffs the two,
so any codegen change that alters what the analyzer sees shows up as a
reviewable baseline diff rather than silent drift.
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: The (ftype, mode) build matrix; invalid combinations are skipped.
FTYPES = ("float", "float16", "float16alt", "float8")
MODES = ("scalar", "auto", "manual")


def _config_key(kernel: str, ftype: str, mode: str) -> str:
    return f"{kernel}/{ftype}/{mode}"


def compute_baseline(
    kernels: Optional[List[str]] = None,
    ftypes: Optional[List[str]] = None,
    modes: Optional[List[str]] = None,
) -> Dict[str, object]:
    """Lint every requested configuration; returns the baseline payload."""
    from ..compiler import compile_source
    from ..kernels import KERNELS
    from .lints import lint_program

    configs: Dict[str, object] = {}
    totals: Dict[str, int] = {}
    severity_totals: Dict[str, int] = {}
    for name in sorted(kernels or KERNELS):
        spec = KERNELS[name]
        for ftype in ftypes or FTYPES:
            for mode in modes or MODES:
                if mode == "manual":
                    if spec.manual_source_fn is None or ftype == "float":
                        continue
                    source = spec.manual_source_fn(ftype)
                    kernel = compile_source(source, lint=False)
                else:
                    source = spec.source_fn(ftype)
                    kernel = compile_source(
                        source, vectorize_loops=(mode == "auto"), lint=False)
                result = lint_program(kernel.program,
                                      vector_report=kernel.vector_report,
                                      source=kernel.asm)
                by_check: Dict[str, int] = {}
                by_severity: Dict[str, int] = {}
                findings = []
                for finding in result.findings:
                    by_check[finding.check] = \
                        by_check.get(finding.check, 0) + 1
                    by_severity[finding.severity] = \
                        by_severity.get(finding.severity, 0) + 1
                    entry = {"check": finding.check,
                             "severity": finding.severity,
                             "line": finding.line}
                    if finding.suggestion is not None:
                        entry["suggestion"] = finding.suggestion
                    findings.append(entry)
                configs[_config_key(name, ftype, mode)] = {
                    "findings": findings,
                    "by_check": dict(sorted(by_check.items())),
                    "by_severity": dict(sorted(by_severity.items())),
                    "blocks": len(result.cfg.blocks),
                }
                for check, count in by_check.items():
                    totals[check] = totals.get(check, 0) + count
                for severity, count in by_severity.items():
                    severity_totals[severity] = \
                        severity_totals.get(severity, 0) + count
    return {
        "configs": configs,
        "totals_by_check": dict(sorted(totals.items())),
        "totals_by_severity": dict(sorted(severity_totals.items())),
        "config_count": len(configs),
    }
