"""Dynamic validation of static lint findings against an execution trace.

Static analysis over-approximates: a flagged instruction may sit on a
path the program never takes.  This module replays a
:class:`LintResult` against the per-address execution counts a
:class:`~repro.sim.tracer.Trace` collects (``Trace.pc_counts``) and
classifies each finding:

``confirmed``
    The flagged instruction executed at least once, so the static
    verdict describes code the program actually runs.
``not-executed``
    The instruction never retired on this input -- possibly dead in
    practice, possibly just not exercised.
``vindicated``
    Specific to ``unreachable-code``: the block indeed never executed,
    i.e. the dynamic run agrees with the static claim.
``no-location``
    The finding has no instruction address (program-level findings such
    as the vectorizer-report summary).

Confirmation is evidence of *reachability*, not of the defect itself --
a confirmed ``use-before-def`` means the read really happens; whether
the stale value matters is the programmer's call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..sim.tracer import Trace
from .lints import LintFinding, LintResult

#: Verdict classes, for consumers that enumerate them.
VERDICTS = ("confirmed", "not-executed", "vindicated", "no-location")


@dataclass
class ValidatedFinding:
    """One static finding paired with its dynamic verdict."""

    finding: LintFinding
    verdict: str  # one of :data:`VERDICTS`
    executions: int = 0

    def to_dict(self) -> Dict[str, object]:
        out = self.finding.to_dict()
        out["verdict"] = self.verdict
        out["executions"] = self.executions
        return out


@dataclass
class ValidationReport:
    """All findings of one lint run, validated against one trace."""

    results: List[ValidatedFinding]

    def confirmed(self) -> List[ValidatedFinding]:
        return [r for r in self.results
                if r.verdict in ("confirmed", "vindicated")]

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {v: 0 for v in VERDICTS}
        for result in self.results:
            out[result.verdict] += 1
        return out

    def to_payload(self) -> Dict[str, object]:
        return {
            "results": [r.to_dict() for r in self.results],
            "counts": {k: v for k, v in self.counts().items() if v},
        }

    def render_text(self) -> str:
        if not self.results:
            return "no findings to validate"
        lines = []
        for result in self.results:
            lines.append(f"[{result.verdict}] "
                         f"(executed {result.executions}x) "
                         f"{result.finding.render()}")
        counts = ", ".join(f"{v}: {n}" for v, n in self.counts().items()
                           if n)
        lines.append(f"-- {counts}")
        return "\n".join(lines)


def validate_findings(findings: List[LintFinding],
                      trace: Trace) -> ValidationReport:
    """Classify each finding by the trace's execution counts."""
    results = []
    for finding in findings:
        if finding.addr is None:
            results.append(ValidatedFinding(finding, "no-location"))
            continue
        executions = trace.executed(finding.addr)
        if finding.check == "unreachable-code":
            # The dynamic run agreeing (never executed) vindicates the
            # static claim; an execution would confirm reachability and
            # thus contradict it.
            results.append(ValidatedFinding(
                finding, "vindicated" if executions == 0 else "confirmed",
                executions))
            continue
        verdict = "confirmed" if executions > 0 else "not-executed"
        results.append(ValidatedFinding(finding, verdict, executions))
    return ValidationReport(results=results)


def validate_result(result: LintResult, trace: Trace,
                    min_severity: Optional[str] = None) -> ValidationReport:
    """Convenience wrapper taking a whole :class:`LintResult`."""
    findings = result.findings
    if min_severity is not None:
        from .lints import severity_at_least
        findings = [f for f in findings
                    if severity_at_least(f.severity, min_severity)]
    return validate_findings(findings, trace)
