"""Dynamic validation of the abstract interpreter's bounds.

``repro analyze --validate`` replays a kernel under the reference
simulator with a per-instruction observer that maintains a **binary64
shadow** of every tracked FP register (the "exact" computation the
error bounds are measured against) and, at every FP-producing site,
checks the concrete machine result against the statically computed
:class:`~repro.analysis.absint.AbsVal`:

* a finite concrete value must lie inside ``[lo, hi]`` (plus binary64
  slack);
* an infinite result requires ``can_inf``; a NaN requires ``can_nan``;
* ``|concrete - shadow|`` must stay within the static error bound
  ``err`` whenever all three are finite.

The analysis' assumptions (its *soundness contract*) are checked, not
trusted: operands the analysis resolved via the input contract are
verified to be finite with magnitude at most ``input_bound`` (and the
shadow is reseeded from the concrete bits there, mirroring the
analysis' zero-error assumption); integer sources of int->float
conversions are checked against ``max(input_bound, trip_bound)``; and
loop trip counts are checked against ``trip_bound`` after the run.

Any escape is a :class:`BoundViolation` -- an unsound bound is a hard
failure, never a warning.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..fp import registry
from ..fp.convert import to_double
from ..kernels import KERNELS
from .absint import AbsintConfig, AbsintResult, SiteAbsState, analyze_program
from .dataflow import Format, operand_formats, regs_written, result_format

_FLEN = 32

#: ftypes the committed baseline matrix validates (the smallFloat ones;
#: ``float`` is the golden reference, not a verification target).
VALIDATION_FTYPES: Tuple[str, ...] = ("float16", "float16alt", "float8")

#: Stop recording (but keep counting) violations past this many.
_MAX_RECORDED = 50

#: Relative slack for binary64 shadow drift and outward-rounding ties.
_REL_SLACK = 1e-9


@dataclass
class BoundViolation:
    """One dynamically observed escape from a static bound."""

    kind: str  # value-escape | inf-escape | nan-escape | error-escape
    #          | input-contract | int-contract | trip-contract
    addr: int
    line: Optional[int]
    mnemonic: str
    detail: str
    lane: Optional[int] = None

    def render(self) -> str:
        where = f"line {self.line}" if self.line is not None \
            else f"{self.addr:#x}"
        lane = f" lane {self.lane}" if self.lane is not None else ""
        return f"{where}: {self.mnemonic}{lane}: [{self.kind}] {self.detail}"


def _fdiv(a: float, b: float) -> float:
    if math.isnan(a) or math.isnan(b):
        return float("nan")
    if b == 0.0:
        if a == 0.0:
            return float("nan")
        sign = math.copysign(1.0, a) * math.copysign(1.0, b)
        return math.copysign(float("inf"), sign)
    return a / b


def _fsqrt(a: float) -> float:
    if math.isnan(a) or a < 0.0:
        return float("nan")
    return math.sqrt(a)


class AbsintObserver:
    """Per-instruction step hook checking static bounds on the fly.

    Pass one as ``run_kernel(..., injector=observer)`` and call
    :meth:`finish` after a normal halt (the simulator's hook fires
    *before* each fetch, so the final instruction's result is only
    visible after the run ends).  The static analysis is built lazily
    from ``sim.program`` on the first step, which guarantees the
    validated CFG is exactly the program being executed.
    """

    def __init__(self, config: Optional[AbsintConfig] = None,
                 result: Optional[AbsintResult] = None):
        self.config = config or AbsintConfig()
        self.result = result
        self.violations: List[BoundViolation] = []
        self.violation_count = 0
        self.checked_values = 0
        self.checked_sites = 0
        self._sites: Dict[int, SiteAbsState] = \
            {} if result is None else dict(result.sites)
        #: reg -> (format the shadow was produced under, per-lane f64).
        self._shadow: Dict[int, Tuple[Format, List[float]]] = {}
        self._pending = None
        self._machine = None

    # ------------------------------------------------------------------
    # Step hook protocol
    # ------------------------------------------------------------------
    def __call__(self, sim, executed: int) -> None:
        machine = sim.machine
        self._machine = machine
        if self.result is None:
            self.result = analyze_program(sim.program,
                                          config=self.config)
            self._sites = dict(self.result.sites)
        self._finalize(machine)
        state = self._sites.get(machine.pc)
        if state is None or state.site.instr is None:
            self._shadow.clear()  # off the analysed map: drop all facts
            return
        instr = state.site.instr
        capture: Dict[int, List[float]] = {}
        for reg, fmt in operand_formats(instr).items():
            capture[reg] = self._operand_lanes(
                machine, reg, fmt, reg in state.contract_regs, state)
        extra = None
        kind = instr.spec.kind
        if kind == "fcvt_f_w":
            extra = float(machine.read_x_signed(instr.rs1))
            self._check_int_contract(state, extra)
        elif kind == "fcvt_f_wu":
            extra = float(machine.read_x(instr.rs1))
            self._check_int_contract(state, extra)
        elif kind == "vfcvt_f_x":
            width = registry.by_suffix(instr.spec.fp_fmt).width
            bits = machine.read_f(instr.rs1)
            mask = (1 << width) - 1
            extra = []
            for i in range(_FLEN // width):
                lane = (bits >> (i * width)) & mask
                if lane >= 1 << (width - 1):
                    lane -= 1 << width
                extra.append(float(lane))
        elif kind in ("vfcpka", "vfcpkb"):
            extra = self._operand_lanes(
                machine, instr.rd, (instr.spec.fp_fmt, True), False, state)
        self._pending = (state, instr, capture, extra)

    def finish(self) -> None:
        """Finalize the last instruction after a normal halt."""
        if self._machine is not None:
            self._finalize(self._machine)

    # ------------------------------------------------------------------
    # Operand resolution (mirrors ``absint._resolve``)
    # ------------------------------------------------------------------
    def _decode_lanes(self, machine, reg: int, fmt: Format) -> List[float]:
        ffmt = registry.by_suffix(fmt[0])
        if fmt[1]:
            # Format hook: packed lanes for SIMD formats, a decoded
            # shared-scale block for block formats like MX8.
            return ffmt.decode_lanes(machine.read_f(reg), _FLEN)
        return [to_double(machine.read_f(reg, ffmt.width), ffmt)]

    def _operand_lanes(self, machine, reg: int, fmt: Format,
                       is_contract: bool,
                       state: SiteAbsState) -> List[float]:
        if is_contract:
            lanes = self._decode_lanes(machine, reg, fmt)
            bound = min(self.config.input_bound,
                        registry.by_suffix(fmt[0]).max_value)
            limit = bound * (1.0 + 1e-6)
            for i, v in enumerate(lanes):
                if not math.isfinite(v) or abs(v) > limit:
                    self._record(
                        state, "input-contract", lane=i,
                        detail=(f"operand f{reg} = {v!r} violates the "
                                f"input contract |v| <= {bound:g}"))
            self._shadow[reg] = (fmt, list(lanes))
            return lanes
        tagged = self._shadow.get(reg)
        if tagged is not None and tagged[0][0] == fmt[0]:
            tfmt, tlanes = tagged
            ffmt = registry.by_suffix(fmt[0])
            if fmt[1] and not tfmt[1]:
                # Scalar consumed as vector: narrow writes zero-extend.
                return [tlanes[0]] + [0.0] * (_FLEN // ffmt.width - 1)
            if not fmt[1] and tfmt[1]:
                return [tlanes[0]]
            return list(tlanes)
        # No matching shadow (format reinterpretation, raw-bits write):
        # reseed from the concrete bits -- the analysis used top there.
        return self._decode_lanes(machine, reg, fmt)

    def _check_int_contract(self, state: SiteAbsState, value: float) -> None:
        bound = float(max(self.config.input_bound, self.config.trip_bound))
        if abs(value) > bound:
            self._record(
                state, "int-contract",
                detail=(f"int->float source {value:g} violates the "
                        f"assumed integer magnitude bound {bound:g}"))

    # ------------------------------------------------------------------
    # Result finalization and checking
    # ------------------------------------------------------------------
    def _finalize(self, machine) -> None:
        pending, self._pending = self._pending, None
        if pending is None:
            return
        state, instr, capture, extra = pending
        fmt = result_format(instr)
        if fmt is None:
            # Integer/raw-bits/unknown result: the shadow is stale.
            for reg in regs_written(instr):
                self._shadow.pop(reg, None)
            return
        aval = state.result
        if aval is None:  # pragma: no cover - defensive
            self._shadow.pop(instr.rd, None)
            return
        self.checked_sites += 1
        concrete = self._decode_lanes(machine, instr.rd, fmt)
        shadows = self._shadow_result(instr, capture, extra, concrete,
                                      len(concrete))
        for i, v in enumerate(concrete):
            self.checked_values += 1
            s = shadows[i]
            if math.isnan(v):
                if not aval.can_nan:
                    self._record(state, "nan-escape", lane=i,
                                 detail="concrete NaN but can_nan=False")
            elif math.isinf(v):
                if not aval.can_inf:
                    self._record(state, "inf-escape", lane=i,
                                 detail="concrete inf but can_inf=False")
            else:
                slack = _REL_SLACK * (abs(v) + 1.0)
                if not (aval.lo - slack <= v <= aval.hi + slack):
                    self._record(
                        state, "value-escape", lane=i,
                        detail=(f"{v:g} outside "
                                f"[{aval.lo:g}, {aval.hi:g}]"))
                if math.isfinite(s) and math.isfinite(aval.err):
                    err_slack = _REL_SLACK * (abs(v) + abs(s) + 1.0)
                    if abs(v - s) > aval.err + err_slack:
                        self._record(
                            state, "error-escape", lane=i,
                            detail=(f"|{v:g} - shadow {s:g}| = "
                                    f"{abs(v - s):g} exceeds the error "
                                    f"bound {aval.err:g}"))
            if not math.isfinite(v) or not math.isfinite(s):
                shadows[i] = v  # reseed: error tracking restarts here
        self._shadow[instr.rd] = (fmt, shadows)

    def _shadow_result(self, instr, capture, extra,
                       concrete: List[float], n: int) -> List[float]:
        kind = instr.spec.kind

        def lanes(reg: int, count: int = 0) -> List[float]:
            got = capture.get(reg)
            count = count or n
            if got is None:  # pragma: no cover - defensive
                return list(concrete[:count])
            if len(got) < count:
                return [got[0]] * count  # .r replicated scalar
            return got[:count]

        if kind in ("fcvt_f_w", "fcvt_f_wu"):
            return [extra]
        if kind == "vfcvt_f_x":
            return list(extra[:n])
        if kind in ("fcvt_f2f", "vfcvt_f2f"):
            return lanes(instr.rs1)  # value unchanged in exact arithmetic
        if kind in ("vfcpka", "vfcpkb"):
            out = list(extra[:n])
            base = 0 if kind == "vfcpka" else 2
            a, b = lanes(instr.rs1, 1), lanes(instr.rs2, 1)
            if base < n:
                out[base] = a[0]
            if base + 1 < n:
                out[base + 1] = b[0]
            return out
        if kind in ("fsqrt", "vfsqrt"):
            return [_fsqrt(x) for x in lanes(instr.rs1)]
        if kind == "fmulex":
            a, b = lanes(instr.rs1, 1), lanes(instr.rs2, 1)
            return [a[0] * b[0]]
        if kind == "fmacex":
            a, b = lanes(instr.rs1, 1), lanes(instr.rs2, 1)
            acc = lanes(instr.rd, 1)
            return [acc[0] + a[0] * b[0]]
        if kind == "vfdotpex":
            src = instr.spec.src_fmt or instr.spec.fp_fmt
            count = _FLEN // registry.by_suffix(src).width
            a = lanes(instr.rs1, count)
            b = lanes(instr.rs2, count)
            acc = lanes(instr.rd, 1)
            return [acc[0] + math.fsum(x * y for x, y in zip(a, b))]
        if kind == "vfdotpmx":
            src = instr.spec.src_fmt or instr.spec.fp_fmt
            count = max(1, (_FLEN - 8) // registry.by_suffix(src).width)
            a = lanes(instr.rs1, count)
            b = lanes(instr.rs2, count)
            acc = lanes(instr.rd, 1)
            return [acc[0] + math.fsum(x * y for x, y in zip(a, b))]
        if kind in ("fmadd", "fmsub", "fnmsub", "fnmadd"):
            a, b, c = (lanes(instr.rs1, 1), lanes(instr.rs2, 1),
                       lanes(instr.rs3, 1))
            p = a[0] * b[0]
            if kind in ("fnmsub", "fnmadd"):
                p = -p
            addend = c[0] if kind in ("fmadd", "fnmsub") else -c[0]
            return [p + addend]
        if kind == "vfmac":
            a, b, acc = (lanes(instr.rs1), lanes(instr.rs2),
                         lanes(instr.rd))
            return [acc[i] + a[i] * b[i] for i in range(n)]

        base = kind[2:] if kind.startswith("vf") else kind[1:]
        a = lanes(instr.rs1)
        b = lanes(instr.rs2) if instr.rs2 is not None else a
        if base == "add":
            return [a[i] + b[i] for i in range(n)]
        if base == "sub":
            return [a[i] - b[i] for i in range(n)]
        if base == "mul":
            return [a[i] * b[i] for i in range(n)]
        if base == "div":
            return [_fdiv(a[i], b[i]) for i in range(n)]
        if base in ("min", "max"):
            pick = min if base == "min" else max
            return [concrete[i] if math.isnan(a[i]) or math.isnan(b[i])
                    else pick(a[i], b[i]) for i in range(n)]
        if base in ("sgnj", "sgnjn", "sgnjx"):
            return [math.copysign(abs(a[i]), concrete[i])
                    if not math.isnan(a[i]) else concrete[i]
                    for i in range(n)]
        # Unknown FP kind: trust the machine (reseed from concrete).
        return list(concrete)  # pragma: no cover - future kinds

    def _record(self, state: SiteAbsState, kind: str, detail: str,
                lane: Optional[int] = None) -> None:
        self.violation_count += 1
        if len(self.violations) < _MAX_RECORDED:
            self.violations.append(BoundViolation(
                kind=kind, addr=state.site.addr, line=state.site.line,
                mnemonic=state.site.mnemonic, detail=detail, lane=lane))


def check_trip_contract(result: AbsintResult, trace,
                        config: AbsintConfig) -> List[BoundViolation]:
    """Post-run check that no loop exceeded the assumed trip bound.

    Loop entries are over-approximated by the execution counts of the
    non-body predecessors' terminators, so this can only under-report
    -- it is a sanity check on the trip contract, not a proof.
    """
    violations: List[BoundViolation] = []
    cfg = result.cfg
    for loop in cfg.merged_loops():
        header = cfg.blocks[loop.header]
        if not header.sites:
            continue
        executions = trace.executed(header.sites[0].addr)
        entries = 0
        for pred in header.preds:
            if pred in loop.body:
                continue
            last = cfg.blocks[pred].last
            if last is not None:
                entries += trace.executed(last.addr)
        cap = (config.trip_bound + 1) * max(1, entries)
        if executions > cap:
            site = header.sites[0]
            violations.append(BoundViolation(
                kind="trip-contract", addr=site.addr, line=site.line,
                mnemonic=site.mnemonic,
                detail=(f"loop header ran {executions} times over "
                        f"~{max(1, entries)} entries, beyond the "
                        f"assumed bound of {config.trip_bound} "
                        f"iterations per entry")))
    return violations


@dataclass
class ConfigValidation:
    """Validation outcome for one kernel x ftype x mode configuration."""

    kernel: str
    ftype: str
    mode: str
    checked_sites: int
    checked_values: int
    violation_count: int
    violations: List[BoundViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.violation_count == 0

    def render(self) -> str:
        status = "ok" if self.ok else f"{self.violation_count} violation(s)"
        return (f"{self.kernel}/{self.ftype}/{self.mode}: {status} "
                f"({self.checked_values} values at "
                f"{self.checked_sites} site executions)")


@dataclass
class SoundnessReport:
    """Aggregated validation outcomes; unsound bounds are hard failures."""

    configs: List[ConfigValidation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.configs)

    def render_text(self) -> str:
        lines = [c.render() for c in self.configs]
        for c in self.configs:
            for violation in c.violations:
                lines.append(f"  {c.kernel}/{c.ftype}/{c.mode} "
                             + violation.render())
        total = sum(c.checked_values for c in self.configs)
        bad = sum(c.violation_count for c in self.configs)
        verdict = "SOUND" if bad == 0 else "UNSOUND"
        lines.append(f"validation: {verdict} -- {total} checked values, "
                     f"{bad} violation(s) across {len(self.configs)} "
                     f"configuration(s)")
        return "\n".join(lines)


def validate_kernel(name: str, ftype: str, mode: str,
                    config: Optional[AbsintConfig] = None,
                    seed: int = 0, frm: Optional[int] = None,
                    sr_key: int = 0) -> ConfigValidation:
    """Replay one configuration under the observer.

    ``frm``/``sr_key`` select the dynamic rounding mode of the replay
    run (e.g. stochastic rounding); the static verdict's 1-ulp error
    model covers every mode, so soundness must hold for all of them.
    """
    from ..harness.runner import run_kernel  # deferred: heavy import

    config = config or AbsintConfig()
    observer = AbsintObserver(config)
    run = run_kernel(KERNELS[name], ftype, mode, seed=seed,
                     injector=observer, frm=frm, sr_key=sr_key)
    observer.finish()
    violations = list(observer.violations)
    count = observer.violation_count
    trips = check_trip_contract(observer.result, run.trace, config)
    violations.extend(trips)
    count += len(trips)
    return ConfigValidation(
        kernel=name, ftype=ftype, mode=mode,
        checked_sites=observer.checked_sites,
        checked_values=observer.checked_values,
        violation_count=count, violations=violations)


def validation_matrix(
    kernels: Optional[Sequence[str]] = None,
    ftypes: Sequence[str] = VALIDATION_FTYPES,
) -> List[Tuple[str, str, str]]:
    """The (kernel, ftype, mode) triples the baseline matrix covers."""
    out = []
    for name in (kernels or sorted(KERNELS)):
        spec = KERNELS[name]
        modes = ["scalar", "auto"]
        if getattr(spec, "manual_source_fn", None) is not None:
            modes.append("manual")
        for ftype in ftypes:
            for mode in modes:
                out.append((name, ftype, mode))
    return out


def validate_matrix(kernels: Optional[Sequence[str]] = None,
                    ftypes: Sequence[str] = VALIDATION_FTYPES,
                    config: Optional[AbsintConfig] = None,
                    seed: int = 0) -> SoundnessReport:
    """Replay every configuration in the baseline matrix."""
    report = SoundnessReport()
    for name, ftype, mode in validation_matrix(kernels, ftypes):
        report.configs.append(
            validate_kernel(name, ftype, mode, config=config, seed=seed))
    return report
