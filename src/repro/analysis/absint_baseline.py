"""Abstract-interpretation baseline over every kernel configuration.

``compute_absint_baseline`` runs :func:`repro.analysis.absint.
analyze_program` over the same kernel x ftype x mode build matrix the
lint baseline covers and snapshots, per configuration, the analysis
summary (site counts, widened headers, the largest finite error bound)
plus every risk's identity.  The committed snapshot lives at
``benchmarks/results/absint_baseline.json``; the drift test in
``tests/analysis/test_absint_baseline.py`` recomputes and diffs it, so
a transfer-function or widening change shows up as a reviewable
baseline diff rather than silent drift.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .baseline import FTYPES, MODES, _config_key


def compute_absint_baseline(
    kernels: Optional[List[str]] = None,
    ftypes: Optional[List[str]] = None,
    modes: Optional[List[str]] = None,
) -> Dict[str, object]:
    """Analyze every requested configuration; returns the payload."""
    from ..compiler import compile_source
    from ..kernels import KERNELS
    from .absint import analyze_program, collect_risks

    configs: Dict[str, object] = {}
    kind_totals: Dict[str, int] = {}
    for name in sorted(kernels or KERNELS):
        spec = KERNELS[name]
        for ftype in ftypes or FTYPES:
            for mode in modes or MODES:
                if mode == "manual":
                    if spec.manual_source_fn is None or ftype == "float":
                        continue
                    source = spec.manual_source_fn(ftype)
                    kernel = compile_source(source, lint=False)
                else:
                    source = spec.source_fn(ftype)
                    kernel = compile_source(
                        source, vectorize_loops=(mode == "auto"), lint=False)
                result = analyze_program(kernel.program)
                risks = collect_risks(result)
                by_kind: Dict[str, int] = {}
                entries = []
                for risk in risks:
                    by_kind[risk.kind] = by_kind.get(risk.kind, 0) + 1
                    entry: Dict[str, object] = {"kind": risk.kind,
                                                "line": risk.site.line,
                                                "mnemonic": risk.site.mnemonic}
                    if risk.fmt is not None:
                        entry["fmt"] = risk.fmt
                    if risk.suggestion is not None:
                        entry["suggestion"] = risk.suggestion
                    entries.append(entry)
                configs[_config_key(name, ftype, mode)] = {
                    "risks": entries,
                    "by_kind": dict(sorted(by_kind.items())),
                    "summary": result.summary(),
                }
                for kind, count in by_kind.items():
                    kind_totals[kind] = kind_totals.get(kind, 0) + count
    return {
        "configs": configs,
        "totals_by_kind": dict(sorted(kind_totals.items())),
        "config_count": len(configs),
    }
