"""Static analysis over assembled programs: CFG, dataflow and lints.

The subsystem has three layers:

* :mod:`repro.analysis.cfg` -- basic blocks, call edges, dominators and
  natural loops over an assembled :class:`~repro.isa.assembler.Program`;
* :mod:`repro.analysis.dataflow` -- a generic worklist framework with
  reaching definitions, liveness, maybe-uninitialized registers and
  smallFloat format tracking built on it;
* :mod:`repro.analysis.lints` -- the checks themselves, from classic
  use-before-def up to the smallFloat-specific format-mismatch and
  narrow-accumulation diagnostics, exposed as ``repro lint`` on the
  command line and run automatically by the compiler pipeline.

:mod:`repro.analysis.validate` closes the loop: it replays static
findings against a dynamic :class:`~repro.sim.tracer.Trace` to report
which flagged instructions the program actually executes.
"""

from .cfg import CFG, BasicBlock, Loop, Site, build_cfg
from .dataflow import (
    DataflowAnalysis,
    FormatTracking,
    Liveness,
    MaybeUninitialized,
    ReachingDefs,
    operand_formats,
    regs_read,
    regs_written,
    result_format,
)
from .lints import (
    CHECKS,
    SEVERITIES,
    LintConfig,
    LintFinding,
    LintResult,
    lint_program,
    parse_suppressions,
    severity_at_least,
)
from .validate import (
    ValidatedFinding,
    ValidationReport,
    validate_findings,
    validate_result,
)

__all__ = [
    "CFG",
    "BasicBlock",
    "Loop",
    "Site",
    "build_cfg",
    "DataflowAnalysis",
    "FormatTracking",
    "Liveness",
    "MaybeUninitialized",
    "ReachingDefs",
    "operand_formats",
    "regs_read",
    "regs_written",
    "result_format",
    "CHECKS",
    "SEVERITIES",
    "LintConfig",
    "LintFinding",
    "LintResult",
    "lint_program",
    "parse_suppressions",
    "severity_at_least",
    "ValidatedFinding",
    "ValidationReport",
    "validate_findings",
    "validate_result",
]
