"""Static analysis over assembled programs: CFG, dataflow and lints.

The subsystem has three layers:

* :mod:`repro.analysis.cfg` -- basic blocks, call edges, dominators and
  natural loops over an assembled :class:`~repro.isa.assembler.Program`;
* :mod:`repro.analysis.dataflow` -- a generic worklist framework with
  reaching definitions, liveness, maybe-uninitialized registers and
  smallFloat format tracking built on it;
* :mod:`repro.analysis.lints` -- the checks themselves, from classic
  use-before-def up to the smallFloat-specific format-mismatch and
  narrow-accumulation diagnostics, exposed as ``repro lint`` on the
  command line and run automatically by the compiler pipeline.

:mod:`repro.analysis.validate` closes the loop: it replays static
findings against a dynamic :class:`~repro.sim.tracer.Trace` to report
which flagged instructions the program actually executes.

On top of these sits :mod:`repro.analysis.absint` -- an abstract
interpreter propagating per-register value intervals and rounding-error
bounds with widening at loop heads (exposed as ``repro analyze`` and
as the ``overflow-to-inf-risk``/``underflow-flush-risk``/
``catastrophic-cancellation``/``error-budget-exceeded`` lints) -- and
:mod:`repro.analysis.absint_validate`, which replays those bounds
against a binary64 shadow execution and treats any escape as a hard
soundness failure.
"""

from .absint import (
    AbsintConfig,
    AbsintResult,
    AbsVal,
    Risk,
    analyze_cfg,
    analyze_program,
    collect_risks,
)
from .absint_baseline import compute_absint_baseline
from .absint_validate import (
    AbsintObserver,
    BoundViolation,
    SoundnessReport,
    validate_kernel,
    validate_matrix,
)
from .cfg import CFG, BasicBlock, Loop, Site, build_cfg
from .dataflow import (
    DataflowAnalysis,
    FormatTracking,
    Liveness,
    MaybeUninitialized,
    ReachingDefs,
    operand_formats,
    regs_read,
    regs_written,
    result_format,
)
from .lints import (
    CHECKS,
    SEVERITIES,
    LintConfig,
    LintFinding,
    LintResult,
    lint_program,
    parse_suppressions,
    severity_at_least,
)
from .serialize import dumps_canonical, write_canonical
from .validate import (
    ValidatedFinding,
    ValidationReport,
    validate_findings,
    validate_result,
)

__all__ = [
    "AbsintConfig",
    "AbsintResult",
    "AbsVal",
    "Risk",
    "analyze_cfg",
    "analyze_program",
    "collect_risks",
    "compute_absint_baseline",
    "AbsintObserver",
    "BoundViolation",
    "SoundnessReport",
    "validate_kernel",
    "validate_matrix",
    "dumps_canonical",
    "write_canonical",
    "CFG",
    "BasicBlock",
    "Loop",
    "Site",
    "build_cfg",
    "DataflowAnalysis",
    "FormatTracking",
    "Liveness",
    "MaybeUninitialized",
    "ReachingDefs",
    "operand_formats",
    "regs_read",
    "regs_written",
    "result_format",
    "CHECKS",
    "SEVERITIES",
    "LintConfig",
    "LintFinding",
    "LintResult",
    "lint_program",
    "parse_suppressions",
    "severity_at_least",
    "ValidatedFinding",
    "ValidationReport",
    "validate_findings",
    "validate_result",
]
