"""The SmallFloat-aware static lint pass.

Twelve checks built on the CFG, dataflow and abstract-interpretation
layers.  Each one encodes a failure mode the paper's
format-per-operation design space makes easy to hit:

``use-before-def``
    A register is read on some path before anything writes it.
``format-mismatch``
    An f-register written in one smallFloat format is consumed by an
    operation of a different format without an intervening conversion
    (``fcvt``/``vfcpk``).  ``binary16`` vs ``binary16alt`` counts: the
    two formats share their 16-bit encoding width, so nothing at run
    time will catch the confusion.
``narrow-accumulation``
    A reduction loop accumulates in a sub-32-bit format.  MiniFloat-NN
    / ExSdotp-style expanding operations (``fmacex.s.*``,
    ``vfdotpex.s.*``) exist precisely so products are summed in
    binary32; the check names the exact replacement.  Also recognizes
    (as a ``note``) the NN multiply-widen-accumulate idiom -- a
    binary32 ``fadd.s`` fed by ``fcvt.s.*``-widened narrow products --
    where the expanding op fuses the chain with a single rounding.
``dead-write``
    A computed value is never read.
``redundant-convert``
    A format round-trip ``a -> b -> a`` (lossless when the intermediate
    is wider -- pure waste -- and silently destructive when narrower).
``uninitialized-load``
    A load from ``.space``-reserved data bytes that no store in the
    program initializes.
``missed-vectorization``
    Loops doing scalar smallFloat arithmetic that packed-SIMD ``Xfvec``
    could process 2-4 elements at a time, cross-checked against the
    auto-vectorizer's :class:`VectorizeReport` when one is available.
    Scalar multiply-widen-accumulate reductions (the NN dot-product
    idiom) get the sharper ``vfdotpex.s.*`` suggestion, plus
    ``vfdotpmx.s.mx`` when a block-scaled format is registered.
``unreachable-code``
    Basic blocks no entry point reaches.
``overflow-to-inf-risk``
    The abstract interpreter (:mod:`repro.analysis.absint`) proves a
    result's magnitude can exceed the format's largest finite value
    under the documented input/trip contract -- rounding to infinity.
    Loop accumulators flagged here name the expanding
    ``fmacex``/``vfdotpex`` replacement whose binary32 accumulator
    provably cannot overflow at the same magnitudes.
``underflow-flush-risk``
    Every possible result magnitude sits below the format's smallest
    normal: the value lives in the subnormal range or flushes to zero.
``catastrophic-cancellation``
    An add/subtract whose operands carry accumulated rounding error can
    cancel to near zero, where that carried error dominates the result.
``error-budget-exceeded``
    A stored value's statically bounded relative error exceeds the
    budget configured in :class:`repro.analysis.absint.AbsintConfig`
    (off by default).

Findings carry the assembly source line (threaded through
:class:`Program.lines`), the instruction address (used by the dynamic
trace-validation mode) and, where applicable, a concrete suggestion.

Suppression: a source line ending in ``# lint: ignore`` suppresses all
findings on that line; ``# lint: ignore[check-a,check-b]`` suppresses
just the named checks.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from ..fp import registry
from ..isa.assembler import Program
from ..isa.disassembler import format_instr
from ..isa.registers import xreg_name
from .absint import AbsintConfig, Risk, analyze_cfg, collect_risks
from .cfg import CFG, Site, build_cfg
from .dataflow import (
    CALLEE_SAVED,
    FormatMap,
    FormatTracking,
    Liveness,
    MaybeUninitialized,
    ReachingDefs,
    operand_formats,
    regs_read,
    regs_written,
)

#: Severity levels, least to most severe.
SEVERITIES = ("note", "warning", "error")

#: Every check name, for configuration and documentation.
CHECKS = (
    "use-before-def",
    "format-mismatch",
    "narrow-accumulation",
    "dead-write",
    "redundant-convert",
    "uninitialized-load",
    "missed-vectorization",
    "unreachable-code",
    "overflow-to-inf-risk",
    "underflow-flush-risk",
    "catastrophic-cancellation",
    "error-budget-exceeded",
)

def _width(suffix: str) -> int:
    """Bit width of a format suffix, from the registry."""
    return registry.by_suffix(suffix).width


def _fmt_name(suffix: str) -> str:
    """Human name of a format suffix, from the registry."""
    return registry.by_suffix(suffix).name


def _narrow(suffix: Optional[str]) -> bool:
    """Is this a sub-32-bit format (accumulation loses precision)?"""
    return suffix is not None and registry.by_suffix(suffix).width < 32


def _narrow_vec(suffix: Optional[str]) -> bool:
    """Narrow *and* packed-SIMD capable (vectorization is possible)."""
    if suffix is None:
        return False
    fmt = registry.by_suffix(suffix)
    return fmt.width < 32 and fmt.has_vector

_SUPPRESS_RE = re.compile(r"#\s*lint:\s*ignore(?:\[([\w,\s-]*)\])?")


def severity_at_least(severity: str, floor: str) -> bool:
    return SEVERITIES.index(severity) >= SEVERITIES.index(floor)


@dataclass
class LintFinding:
    """One diagnostic produced by the lint pass."""

    check: str
    severity: str  # one of :data:`SEVERITIES`
    message: str
    addr: Optional[int] = None  #: instruction address (trace validation)
    line: Optional[int] = None  #: 1-based assembly source line
    instr: Optional[str] = None  #: disassembled instruction text
    function: Optional[str] = None
    suggestion: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "check": self.check,
            "severity": self.severity,
            "message": self.message,
        }
        if self.addr is not None:
            out["addr"] = self.addr
        if self.line is not None:
            out["line"] = self.line
        if self.instr is not None:
            out["instr"] = self.instr
        if self.function is not None:
            out["function"] = self.function
        if self.suggestion is not None:
            out["suggestion"] = self.suggestion
        return out

    def render(self) -> str:
        location = f"line {self.line}" if self.line is not None else (
            f"{self.addr:#x}" if self.addr is not None else "program")
        text = f"{location}: {self.severity}: [{self.check}] {self.message}"
        if self.instr:
            text += f"  <{self.instr}>"
        if self.suggestion:
            text += f"  (suggestion: {self.suggestion})"
        return text


@dataclass
class LintConfig:
    """Which checks run and which findings surface."""

    disabled: Set[str] = field(default_factory=set)
    min_severity: str = "note"
    #: Abstract-interpretation assumptions for the absint-backed checks
    #: (``None`` uses the defaults; set ``error_budget`` to arm
    #: ``error-budget-exceeded``).
    absint: Optional[AbsintConfig] = None

    def wants(self, check: str) -> bool:
        return check not in self.disabled


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[LintFinding]
    cfg: CFG
    elapsed: float = 0.0

    def by_check(self, check: str) -> List[LintFinding]:
        return [f for f in self.findings if f.check == check]

    def errors(self) -> List[LintFinding]:
        return [f for f in self.findings if f.severity == "error"]

    def warnings(self) -> List[LintFinding]:
        return [f for f in self.findings if f.severity == "warning"]

    def max_severity(self) -> Optional[str]:
        worst = None
        for finding in self.findings:
            if worst is None or severity_at_least(finding.severity, worst):
                worst = finding.severity
        return worst

    def to_payload(self) -> Dict[str, object]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.check] = counts.get(finding.check, 0) + 1
        return {
            "findings": [f.to_dict() for f in self.findings],
            "counts": counts,
            "blocks": len(self.cfg.blocks),
            "entries": [hex(e) for e in self.cfg.entries],
        }

    def render_text(self) -> str:
        if not self.findings:
            return "no findings"
        return "\n".join(f.render() for f in self.findings)


# ----------------------------------------------------------------------
# Shared per-run context
# ----------------------------------------------------------------------
class _Context:
    """Analyses solved once and shared by every check."""

    def __init__(self, cfg: CFG, vector_report=None,
                 absint_config: Optional[AbsintConfig] = None):
        self.cfg = cfg
        self.vector_report = vector_report
        self.absint_config = absint_config
        self._absint_risks: Optional[List[Risk]] = None
        self.reachable = cfg.reachable()
        self.loops = cfg.natural_loops()
        rdefs_solution = ReachingDefs().solve(cfg)
        fmt_solution = FormatTracking().solve(cfg)
        uninit_solution = MaybeUninitialized().solve(cfg)
        self.live_solution = Liveness().solve(cfg)
        # Per-site snapshots (programs here are small; materialize all).
        self.defs_at: Dict[int, Dict[int, FrozenSet[int]]] = {}
        self.fmts_at: Dict[int, FormatMap] = {}
        self.uninit_at: Dict[int, FrozenSet[int]] = {}
        self.site_at: Dict[int, Site] = {}
        for start, block in cfg.blocks.items():
            for site in block.sites:
                self.site_at[site.addr] = site
            ReachingDefs.at_each_site(
                block, rdefs_solution[start][0],
                lambda site, defs: self.defs_at.__setitem__(
                    site.addr, dict(defs)))
            FormatTracking.at_each_site(
                block, fmt_solution[start][0],
                lambda site, fmts: self.fmts_at.__setitem__(
                    site.addr, dict(fmts)))
            MaybeUninitialized.at_each_site(
                block, uninit_solution[start][0],
                lambda site, regs: self.uninit_at.__setitem__(
                    site.addr, regs))

    def absint_risks(self) -> List[Risk]:
        """Risks from the abstract interpreter, solved on first use."""
        if self._absint_risks is None:
            result = analyze_cfg(self.cfg, self.absint_config)
            self._absint_risks = collect_risks(result, self.reachable)
        return self._absint_risks

    def describe(self, site: Site) -> Tuple[Optional[int], Optional[str],
                                            Optional[str]]:
        text = None
        if site.instr is not None:
            text = format_instr(site.instr, site.addr)
        return site.line, text, self.cfg.function_of(site.addr)

    def finding(self, check: str, severity: str, message: str, site: Site,
                suggestion: Optional[str] = None) -> LintFinding:
        line, text, function = self.describe(site)
        return LintFinding(check=check, severity=severity, message=message,
                           addr=site.addr, line=line, instr=text,
                           function=function, suggestion=suggestion)


# ----------------------------------------------------------------------
# Checks
# ----------------------------------------------------------------------
_STORE_KINDS = {"sb", "sh", "sw", "fsw"}
_LOAD_KINDS = {"lb", "lbu", "lh", "lhu", "lw", "flw"}


def _check_use_before_def(ctx: _Context) -> List[LintFinding]:
    findings = []
    seen: Set[Tuple[int, int]] = set()
    for start in ctx.cfg.order:
        if start not in ctx.reachable:
            continue
        for site in ctx.cfg.blocks[start].sites:
            if site.instr is None:
                continue
            maybe = ctx.uninit_at.get(site.addr, frozenset())
            for reg in regs_read(site.instr):
                if reg not in maybe or (site.addr, reg) in seen:
                    continue
                # A store of a callee-saved register in the entry block
                # is the standard prologue spill; not a bug.
                if site.kind in _STORE_KINDS and reg in CALLEE_SAVED \
                        and reg == site.instr.rs2:
                    continue
                seen.add((site.addr, reg))
                severity = "warning" if reg in CALLEE_SAVED else "error"
                findings.append(ctx.finding(
                    "use-before-def", severity,
                    f"register {xreg_name(reg)} may be read before it is "
                    f"written on a path from the function entry",
                    site))
    return findings


_SIGN_KINDS = {"fsgnj", "fsgnjn", "fsgnjx", "vfsgnj", "vfsgnjn", "vfsgnjx"}


def _check_format_mismatch(ctx: _Context) -> List[LintFinding]:
    findings = []
    for start in ctx.cfg.order:
        if start not in ctx.reachable:
            continue
        for site in ctx.cfg.blocks[start].sites:
            if site.instr is None:
                continue
            expected = operand_formats(site.instr)
            if not expected:
                continue
            fmts = ctx.fmts_at.get(site.addr, {})
            for reg, (elem_exp, vec_exp) in expected.items():
                actual = fmts.get(reg)
                if actual is None:
                    continue  # unknown provenance: no evidence
                elem_act, vec_act = actual
                if elem_act != elem_exp:
                    severity = ("warning" if site.kind in _SIGN_KINDS
                                else "error")
                    findings.append(ctx.finding(
                        "format-mismatch", severity,
                        f"register {xreg_name(reg)} holds a "
                        f"{_fmt_name(elem_act)} (.{elem_act}) value but "
                        f"{site.mnemonic} consumes it as "
                        f"{_fmt_name(elem_exp)} (.{elem_exp}) with no "
                        f"conversion in between",
                        site,
                        suggestion=f"fcvt.{elem_exp}.{elem_act} "
                                   f"{xreg_name(reg)}, {xreg_name(reg)}"))
                elif vec_exp and not vec_act:
                    findings.append(ctx.finding(
                        "format-mismatch", "warning",
                        f"scalar .{elem_act} value in {xreg_name(reg)} is "
                        f"consumed as a packed vector by {site.mnemonic}; "
                        f"lanes above 0 are stale",
                        site,
                        suggestion=f"vfcpka.{elem_exp}.s or the replicating "
                                   f".r variant"))
    return findings


_ACC_SCALAR = {"fadd", "fmadd"}
_ACC_VECTOR = {"vfadd", "vfmac"}


def _check_narrow_accumulation(ctx: _Context) -> List[LintFinding]:
    findings = []
    seen: Set[int] = set()
    loop_blocks: Set[int] = set()
    for loop in ctx.loops:
        loop_blocks |= loop.body
    for start in sorted(loop_blocks):
        if start not in ctx.reachable or start not in ctx.cfg.blocks:
            continue
        for site in ctx.cfg.blocks[start].sites:
            instr = site.instr
            if instr is None or site.addr in seen:
                continue
            fmt = instr.spec.fp_fmt
            if not _narrow(fmt):
                continue
            kind = instr.spec.kind
            accumulates = (
                (kind == "fadd" and instr.rd in (instr.rs1, instr.rs2))
                or (kind == "fmadd" and instr.rd == instr.rs3)
                or (kind == "vfadd" and instr.rd in (instr.rs1, instr.rs2))
                or kind == "vfmac"
            )
            if not accumulates:
                continue
            seen.add(site.addr)
            # Vector context (a packed product feeds the accumulation, or
            # the accumulation itself is packed) points at the expanding
            # SIMD dot product; scalar context at fmacex.
            vector_context = bool(instr.spec.vec)
            if not vector_context and kind == "fadd":
                other = instr.rs2 if instr.rd == instr.rs1 else instr.rs1
                for def_addr in ctx.defs_at.get(site.addr, {}).get(
                        other, frozenset()):
                    def_site = ctx.site_at.get(def_addr)
                    if def_site is not None and def_site.instr is not None \
                            and def_site.instr.spec.vec:
                        vector_context = True
                        break
            suggestion = (f"vfdotpex.s.{fmt}" if vector_context
                          else f"fmacex.s.{fmt}")
            findings.append(ctx.finding(
                "narrow-accumulation", "warning",
                f"loop accumulates in {_fmt_name(fmt)} (.{fmt}); summing "
                f"products in a {_width(fmt)}-bit format silently loses "
                f"precision -- the expanding {suggestion} accumulates in "
                f"binary32 instead",
                site, suggestion=suggestion))
        # NN idiom: a binary32 accumulation fed by widened narrow
        # products (fmul.<narrow> -> fcvt.s.<narrow> -> fadd.s, or the
        # unpack-a-lane variant vfmul -> srli -> fcvt -> fadd).  The
        # accumulator itself is wide, so precision is mostly fine -- but
        # each narrow fmul still rounds its product before widening, and
        # the expanding ops fuse the whole step with one rounding.
        for site in ctx.cfg.blocks[start].sites:
            instr = site.instr
            if instr is None or site.addr in seen:
                continue
            spec = instr.spec
            if (spec.kind != "fadd" or spec.vec or spec.fp_fmt != "s"
                    or instr.rd not in (instr.rs1, instr.rs2)):
                continue
            other = instr.rs2 if instr.rd == instr.rs1 else instr.rs1
            src_fmt = None
            vector_product = False
            scalar_product = False
            for def_addr in ctx.defs_at.get(site.addr, {}).get(
                    other, frozenset()):
                cvt = ctx.site_at.get(def_addr)
                ci = cvt.instr if cvt is not None else None
                if (ci is None or ci.spec.kind != "fcvt_f2f"
                        or ci.spec.fp_fmt != "s"
                        or not _narrow(ci.spec.src_fmt)):
                    continue
                src_fmt = ci.spec.src_fmt
                # What feeds the widening convert: a scalar narrow
                # product, or an unpacked lane of a packed one?
                for paddr in ctx.defs_at.get(cvt.addr, {}).get(
                        ci.rs1, frozenset()):
                    psite = ctx.site_at.get(paddr)
                    pi = psite.instr if psite is not None else None
                    if pi is None:
                        continue
                    if pi.spec.kind == "fmul" and not pi.spec.vec \
                            and pi.spec.fp_fmt == src_fmt:
                        scalar_product = True
                    elif pi.spec.vec:
                        vector_product = True
                    elif pi.spec.kind in ("srli", "srl"):
                        for saddr in ctx.defs_at.get(psite.addr, {}).get(
                                pi.rs1, frozenset()):
                            ssite = ctx.site_at.get(saddr)
                            si = ssite.instr if ssite is not None else None
                            if si is not None and si.spec.vec:
                                vector_product = True
                                break
            if src_fmt is None or not (scalar_product or vector_product):
                continue
            seen.add(site.addr)
            if vector_product:
                suggestion = f"vfdotpex.s.{src_fmt}"
                detail = (f"a packed vfmul.{src_fmt} product is unpacked "
                          f"and widened lane by lane before the add")
            else:
                suggestion = f"fmacex.s.{src_fmt}"
                detail = (f"fmul.{src_fmt} rounds each product to "
                          f"{_width(src_fmt)} bits before fcvt.s.{src_fmt} "
                          f"widens it")
            extra = ""
            if vector_product and any(f.has_block_dotp
                                      for f in registry.all_formats()):
                extra = ("; block-scaled formats can fuse whole "
                         "shared-exponent blocks with vfdotpmx.s.mx")
            findings.append(ctx.finding(
                "narrow-accumulation", "note",
                f"loop accumulates widened {_fmt_name(src_fmt)} "
                f"(.{src_fmt}) products in binary32: {detail} -- the "
                f"expanding {suggestion} fuses multiply, widen and "
                f"accumulate with a single rounding{extra}",
                site, suggestion=suggestion))
            break  # one finding per block (lane unpacks repeat the idiom)
    return findings


def _check_dead_write(ctx: _Context) -> List[LintFinding]:
    findings = []
    for start in ctx.cfg.order:
        if start not in ctx.reachable:
            continue
        block = ctx.cfg.blocks[start]
        live_out = ctx.live_solution[start][0]
        dead: List[Tuple[Site, int]] = []

        def visit(site: Site, live_after: FrozenSet[int]) -> None:
            if site.instr is None or site.instr.spec.cf is not None:
                return
            for reg in regs_written(site.instr):
                if reg not in live_after:
                    dead.append((site, reg))

        Liveness.at_each_site(block, live_out, visit)
        for site, reg in reversed(dead):
            findings.append(ctx.finding(
                "dead-write", "warning",
                f"value written to {xreg_name(reg)} by {site.mnemonic} is "
                f"never read",
                site))
    return findings


def _check_redundant_convert(ctx: _Context) -> List[LintFinding]:
    findings = []
    for start in ctx.cfg.order:
        if start not in ctx.reachable:
            continue
        for site in ctx.cfg.blocks[start].sites:
            instr = site.instr
            if instr is None or instr.spec.kind not in ("fcvt_f2f",
                                                        "vfcvt_f2f"):
                continue
            dst = instr.spec.fp_fmt
            src = instr.spec.src_fmt
            defs = ctx.defs_at.get(site.addr, {}).get(instr.rs1, frozenset())
            if not defs:
                continue
            round_trip = True
            for def_addr in defs:
                def_site = ctx.site_at.get(def_addr)
                def_instr = def_site.instr if def_site else None
                if def_instr is None or \
                        def_instr.spec.kind not in ("fcvt_f2f",
                                                    "vfcvt_f2f") or \
                        def_instr.spec.src_fmt != dst or \
                        def_instr.spec.fp_fmt != src:
                    round_trip = False
                    break
            if not round_trip:
                continue
            lossless = _width(src) >= _width(dst)
            flavor = ("a lossless round-trip: the second conversion is "
                      "pure overhead" if lossless else
                      "a LOSSY round-trip: the value was already rounded "
                      f"to {_fmt_name(src)}")
            findings.append(ctx.finding(
                "redundant-convert", "warning",
                f"fcvt .{dst} -> .{src} -> .{dst} is {flavor}",
                site,
                suggestion="keep the original register alive instead of "
                           "converting back"))
    return findings


def _block_constants(block) -> Dict[int, Dict[int, int]]:
    """Block-local constant propagation: site addr -> reg -> value.

    Tracks only ``lui``/``addi`` chains -- exactly the ``la``/``li``
    expansion shapes the assembler emits for address formation.
    """
    consts: Dict[int, int] = {}
    at: Dict[int, Dict[int, int]] = {}
    for site in block.sites:
        at[site.addr] = dict(consts)
        instr = site.instr
        if instr is None:
            consts.clear()
            continue
        kind = instr.spec.kind
        if kind == "lui":
            consts[instr.rd] = (instr.imm << 12) & 0xFFFFFFFF
        elif kind == "addi":
            if instr.rs1 == 0:
                consts[instr.rd] = instr.imm & 0xFFFFFFFF
            elif instr.rs1 in consts:
                consts[instr.rd] = (consts[instr.rs1] + instr.imm) \
                    & 0xFFFFFFFF
            else:
                consts.pop(instr.rd, None)
        else:
            for reg in regs_written(instr):
                consts.pop(reg, None)
    return at


def _check_uninitialized_load(ctx: _Context) -> List[LintFinding]:
    program = ctx.cfg.program
    if not program.reserved:
        return []
    ranges = [(base, base + size) for base, size in program.reserved]

    def reserved_range(addr: int) -> Optional[Tuple[int, int]]:
        for lo, hi in ranges:
            if lo <= addr < hi:
                return (lo, hi)
        return None

    # First sweep: every statically resolvable store target.
    stored_into: Set[Tuple[int, int]] = set()
    loads: List[Tuple[Site, int, Tuple[int, int]]] = []
    for start in ctx.cfg.order:
        if start not in ctx.reachable:
            continue
        block = ctx.cfg.blocks[start]
        consts = _block_constants(block)
        for site in block.sites:
            instr = site.instr
            if instr is None:
                continue
            base = consts.get(site.addr, {}).get(instr.rs1)
            if base is None:
                continue
            addr = (base + instr.imm) & 0xFFFFFFFF
            hit = reserved_range(addr)
            if hit is None:
                continue
            if instr.spec.kind in _STORE_KINDS:
                stored_into.add(hit)
            elif instr.spec.kind in _LOAD_KINDS:
                loads.append((site, addr, hit))
    findings = []
    symbol_of = {addr: name for name, addr in program.symbols.items()}
    for site, addr, hit in loads:
        if hit in stored_into:
            continue
        label = symbol_of.get(hit[0])
        where = f"{addr:#x}" + (f" ({label})" if label else "")
        findings.append(ctx.finding(
            "uninitialized-load", "warning",
            f"load from {where}: the bytes were reserved with .space and "
            f"no store in the program initializes them (reads as zero)",
            site))
    return findings


_SCALAR_FP_ARITH = {"fadd", "fsub", "fmul", "fdiv", "fsqrt", "fmin", "fmax",
                    "fmadd", "fmsub", "fnmadd", "fnmsub"}


def _check_missed_vectorization(ctx: _Context) -> List[LintFinding]:
    findings = []
    report = ctx.vector_report
    if report is not None:
        if getattr(report, "rejected_loops", 0):
            findings.append(LintFinding(
                check="missed-vectorization", severity="note",
                message=(f"the auto-vectorizer rejected "
                         f"{report.rejected_loops} loop(s); rewriting them "
                         f"as stride-1 straight-line bodies would let the "
                         f"pass emit packed Xfvec code"),
            ))
        # With a report in hand, the remaining scalar smallFloat loops
        # are the pass's own epilogues -- flagging them would be noise.
        return findings
    flagged: Set[int] = set()
    for loop in ctx.loops:
        scalar_site: Optional[Site] = None
        scalar_fmt: Optional[str] = None
        has_vector = False
        has_widen = False
        has_wide_acc = False
        for start in sorted(loop.body):
            block = ctx.cfg.blocks.get(start)
            if block is None:
                continue
            for site in block.sites:
                if site.instr is None:
                    continue
                spec = site.instr.spec
                if spec.vec:
                    has_vector = True
                elif spec.kind in _SCALAR_FP_ARITH and \
                        _narrow_vec(spec.fp_fmt) and scalar_site is None:
                    scalar_site = site
                    scalar_fmt = spec.fp_fmt
                elif spec.kind == "fcvt_f2f" and spec.fp_fmt == "s" \
                        and _narrow(spec.src_fmt):
                    has_widen = True
                elif spec.kind == "fadd" and spec.fp_fmt == "s" and \
                        site.instr.rd in (site.instr.rs1, site.instr.rs2):
                    has_wide_acc = True
        if scalar_site is not None and not has_vector \
                and scalar_site.addr not in flagged:
            flagged.add(scalar_site.addr)
            lanes = 32 // _width(scalar_fmt)
            if has_widen and has_wide_acc:
                # The NN reduction idiom (multiply, widen, accumulate in
                # binary32): the expanding SIMD dot product does the
                # whole chain over `lanes` elements in one instruction.
                extra = ""
                if any(f.has_block_dotp for f in registry.all_formats()):
                    extra = (", and block-scaled formats fuse whole "
                             "shared-exponent blocks with vfdotpmx.s.mx")
                findings.append(ctx.finding(
                    "missed-vectorization", "note",
                    f"loop is a scalar {_fmt_name(scalar_fmt)} "
                    f"multiply-widen-accumulate reduction; "
                    f"vfdotpex.s.{scalar_fmt} does the same over {lanes} "
                    f"packed elements with one rounding{extra}",
                    scalar_site,
                    suggestion=f"vfdotpex.s.{scalar_fmt} (or compile with "
                               f"vectorize_loops=True, "
                               f"expanding_reductions=True)"))
                continue
            findings.append(ctx.finding(
                "missed-vectorization", "note",
                f"loop performs scalar {_fmt_name(scalar_fmt)} arithmetic; "
                f"packed-SIMD Xfvec processes {lanes} .{scalar_fmt} "
                f"elements per instruction on this 32-bit datapath",
                scalar_site,
                suggestion=f"vfadd.{scalar_fmt}/vfmul.{scalar_fmt}/"
                           f"vfmac.{scalar_fmt} (or compile with "
                           f"vectorize_loops=True)"))
    return findings


def _check_unreachable(ctx: _Context) -> List[LintFinding]:
    findings = []
    for block in ctx.cfg.unreachable_blocks():
        first = block.sites[0]
        count = len(block.sites)
        findings.append(ctx.finding(
            "unreachable-code", "note",
            f"basic block at {block.start:#x} ({count} instruction"
            f"{'s' if count != 1 else ''}) is unreachable from every entry "
            f"point",
            first))
    return findings


# ----------------------------------------------------------------------
# Abstract-interpretation-backed checks (repro.analysis.absint)
# ----------------------------------------------------------------------
def _absint_findings(ctx: _Context, risk_kind: str, check: str,
                     severity: str) -> List[LintFinding]:
    return [ctx.finding(check, severity, risk.message, risk.site,
                        suggestion=risk.suggestion)
            for risk in ctx.absint_risks() if risk.kind == risk_kind]


def _check_overflow_to_inf(ctx: _Context) -> List[LintFinding]:
    return _absint_findings(ctx, "overflow", "overflow-to-inf-risk",
                            "warning")


def _check_underflow_flush(ctx: _Context) -> List[LintFinding]:
    return _absint_findings(ctx, "underflow", "underflow-flush-risk",
                            "note")


def _check_cancellation(ctx: _Context) -> List[LintFinding]:
    return _absint_findings(ctx, "cancellation",
                            "catastrophic-cancellation", "note")


def _check_error_budget(ctx: _Context) -> List[LintFinding]:
    # Only produces findings when an error budget is configured.
    return _absint_findings(ctx, "budget", "error-budget-exceeded",
                            "error")


_CHECK_FNS = {
    "use-before-def": _check_use_before_def,
    "format-mismatch": _check_format_mismatch,
    "narrow-accumulation": _check_narrow_accumulation,
    "dead-write": _check_dead_write,
    "redundant-convert": _check_redundant_convert,
    "uninitialized-load": _check_uninitialized_load,
    "missed-vectorization": _check_missed_vectorization,
    "unreachable-code": _check_unreachable,
    "overflow-to-inf-risk": _check_overflow_to_inf,
    "underflow-flush-risk": _check_underflow_flush,
    "catastrophic-cancellation": _check_cancellation,
    "error-budget-exceeded": _check_error_budget,
}


# ----------------------------------------------------------------------
# Suppressions and the driver
# ----------------------------------------------------------------------
def parse_suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    """``# lint: ignore[...]`` markers per 1-based source line."""
    out: Dict[int, Optional[Set[str]]] = {}
    for line_no, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        if match.group(1) is None:
            out[line_no] = None  # suppress everything on the line
        else:
            names = {part.strip() for part in match.group(1).split(",")
                     if part.strip()}
            out[line_no] = names
    return out


def _suppressed(finding: LintFinding,
                suppressions: Dict[int, Optional[Set[str]]]) -> bool:
    if finding.line is None or finding.line not in suppressions:
        return False
    names = suppressions[finding.line]
    return names is None or finding.check in names


def lint_program(
    program: Program,
    entries: Optional[Sequence[Union[str, int]]] = None,
    vector_report=None,
    source: Optional[str] = None,
    config: Optional[LintConfig] = None,
) -> LintResult:
    """Run every enabled check over an assembled program.

    ``entries`` are the program's entry symbols (inferred when omitted);
    ``vector_report`` is the compiler's :class:`VectorizeReport` when
    the program came from :func:`compile_source`; ``source`` is the
    assembly text, used only for ``# lint: ignore`` suppressions.
    """
    started = time.monotonic()
    config = config or LintConfig()
    cfg = build_cfg(program, entries=entries)
    ctx = _Context(cfg, vector_report=vector_report,
                   absint_config=config.absint)
    suppressions = parse_suppressions(source) if source else {}
    findings: List[LintFinding] = []
    for check in CHECKS:
        if not config.wants(check):
            continue
        for finding in _CHECK_FNS[check](ctx):
            if _suppressed(finding, suppressions):
                continue
            if severity_at_least(finding.severity, config.min_severity):
                findings.append(finding)
    order = {check: index for index, check in enumerate(CHECKS)}
    findings.sort(key=lambda f: (-SEVERITIES.index(f.severity),
                                 f.line or 0, order.get(f.check, 99)))
    return LintResult(findings=findings, cfg=cfg,
                      elapsed=time.monotonic() - started)
