"""One canonical JSON serializer for every committed baseline.

The lint baseline, the absint baseline and the benchmark result
snapshots are all committed to git and diffed by CI, so they must
serialize identically everywhere: keys sorted, two-space indent,
a trailing newline, and non-JSON values (paths, numpy scalars)
stringified rather than crashing the writer.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union


def dumps_canonical(payload: object) -> str:
    """Render ``payload`` as deterministic, diff-stable JSON."""
    return json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n"


def write_canonical(path: Union[str, Path], payload: object) -> Path:
    """Write ``payload`` to ``path`` in the canonical encoding."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(dumps_canonical(payload))
    return path
