"""NN kernel sources in the repro kernel language, parametric in {T}.

Every kernel keeps its *data* (activations, weights, gradients) in the
substituted smallFloat type ``{T}`` and carries every accumulation in
binary32 -- the expanding-accumulation scheme the Xfaux ISA extension
exists for (``fmacex.s.*`` / ``vfdotpex.s.*``; MiniFloat-NN and ExSdotp
are the direct successors of this design).  Compiled with
``expanding_reductions`` the auto-vectorizer turns each reduction into
``vfdotpex.s.*``; without it the loops fall back to the paper's
multiply-then-unpack pattern, which is exactly the narrow-vs-expanding
comparison the benchmark suite measures.

Transcendentals stay inside the subset: ``exp`` is the cube-of-cubes
polynomial ``exp(z) = (poly(z/8))**8`` with a degree-4 Taylor core --
accurate to ~2% over the post-max-subtraction range ``z in [-8, 0]``
and exactly replicated by the float64 goldens, so QoR numbers measure
rounding, not algorithmic, error.
"""

from __future__ import annotations

from ..kernels.polybench import _VECTOR_INFO, _instantiate

#: The polynomial body shared by softmax and attention: reads ``z``,
#: leaves ``exp(z)`` (approximately) in ``p``.  The Horner recurrence
#: is unrolled into sequential statements (a nested expression would
#: hold one scratch register per level and overflow the pool).
_EXP_POLY = """
            float u = z * 0.125;
            float p = 0.16666667 + u * 0.041666667;
            p = 0.5 + u * p;
            p = 1.0 + u * p;
            p = 1.0 + u * p;
            p = p * p;
            p = p * p;
            p = p * p;
"""

#: Two-layer MLP forward: H = relu(X W1^T + b1), Y = H W2^T + b2.
#: Weights travel packed in one buffer (W1 | b1 | W2 | b2) so the
#: kernel fits the 8-register argument convention.  Locals are declared
#: once and reused across loops -- the codegen pins each declaration to
#: a callee-saved register for the whole function, so a flat variable
#: budget keeps every expression within the 5-register scratch pool.
MLP_FWD = """
void nn_mlp_fwd(int b, int ni, int nh, int no, {T} *X, {T} *Wb,
                {T} *H, {T} *Y) {
    {T} *b1 = Wb + ni * nh;
    {T} *W2 = b1 + nh;
    {T} *b2 = W2 + nh * no;
    int s = 0;
    int j = 0;
    int k = 0;
    float acc = 0.0;
    for (s = 0; s < b; s = s + 1) {
        for (j = 0; j < nh; j = j + 1) {
            acc = 0.0;
            for (k = 0; k < ni; k = k + 1) {
                acc = acc + X[s * ni + k] * Wb[j * ni + k];
            }
            acc = acc + (float)b1[j];
            acc = __fmax_f32(acc, 0.0);
            H[s * nh + j] = ({T})acc;
        }
        for (j = 0; j < no; j = j + 1) {
            acc = 0.0;
            for (k = 0; k < nh; k = k + 1) {
                acc = acc + H[s * nh + k] * W2[j * nh + k];
            }
            acc = acc + (float)b2[j];
            Y[s * no + j] = ({T})acc;
        }
    }
}
"""

#: Hand-vectorized MLP forward (the shape a human writes with Xfaux):
#: one ``vfdotpex`` per packed vector, bias seeding the accumulator.
MLP_FWD_MANUAL = """
void nn_mlp_fwd(int b, int ni, int nh, int no, {T} *X, {T} *Wb,
                {T} *H, {T} *Y) {
    int niv = ni / {VF};
    int nhv = nh / {VF};
    {T} *b1 = Wb + ni * nh;
    {T} *W2 = b1 + nh;
    {T} *b2 = W2 + nh * no;
    {TV} *Xv = ({TV}*)X;
    {TV} *W1v = ({TV}*)Wb;
    {TV} *W2v = ({TV}*)W2;
    {TV} *Hv = ({TV}*)H;
    int s = 0;
    int j = 0;
    int k = 0;
    float acc = 0.0;
    for (s = 0; s < b; s = s + 1) {
        for (j = 0; j < nh; j = j + 1) {
            acc = (float)b1[j];
            for (k = 0; k < niv; k = k + 1) {
                acc = {DOTPEX}(acc, Xv[s * niv + k], W1v[j * niv + k]);
            }
            acc = __fmax_f32(acc, 0.0);
            H[s * nh + j] = ({T})acc;
        }
        for (j = 0; j < no; j = j + 1) {
            acc = (float)b2[j];
            for (k = 0; k < nhv; k = k + 1) {
                acc = {DOTPEX}(acc, Hv[s * nhv + k], W2v[j * nhv + k]);
            }
            Y[s * no + j] = ({T})acc;
        }
    }
}
"""

#: MLP training: ``steps`` epochs of forward, MSE loss, backward and a
#: plain SGD update, all over one batch of a *bias-free* two-layer net
#: (Wb packs W1 | W2).  Activations and gradients are stored quantized
#: to {T} (the low-precision-training regime); accumulations and the
#: weight-update arithmetic run in binary32, so the final narrowing of
#: ``W - lr*g`` back to {T} is where RNE stalls and stochastic rounding
#: keeps making unbiased progress.  The first 14 declarations fill the
#: codegen's pinned-register pool; ``steps``/``t``/``loss``/``e`` spill
#: to the stack and are only touched by shallow statements.
MLP_TRAIN = """
void nn_mlp_train(int *dims, float lr, {T} *X, {T} *Tgt, {T} *Wb,
                  float *losses, {T} *S) {
    int b = dims[0];
    int ni = dims[1];
    int nh = dims[2];
    int no = dims[3];
    {T} *W2 = Wb + ni * nh;
    {T} *H = S;
    {T} *Y = S + b * nh;
    {T} *dY = Y + b * no;
    {T} *dH = dY + b * no;
    int s = 0;
    int j = 0;
    int k = 0;
    float acc = 0.0;
    float gscale = 2.0 / (float)(b * no);
    int steps = dims[4];
    int t = 0;
    float loss = 0.0;
    float e = 0.0;
    for (t = 0; t < steps; t = t + 1) {
        for (s = 0; s < b; s = s + 1) {
            for (j = 0; j < nh; j = j + 1) {
                acc = 0.0;
                for (k = 0; k < ni; k = k + 1) {
                    acc = acc + X[s * ni + k] * Wb[j * ni + k];
                }
                acc = __fmax_f32(acc, 0.0);
                H[s * nh + j] = ({T})acc;
            }
            for (j = 0; j < no; j = j + 1) {
                acc = 0.0;
                for (k = 0; k < nh; k = k + 1) {
                    acc = acc + H[s * nh + k] * W2[j * nh + k];
                }
                Y[s * no + j] = ({T})acc;
            }
        }
        loss = 0.0;
        for (s = 0; s < b; s = s + 1) {
            for (j = 0; j < no; j = j + 1) {
                e = (float)Y[s * no + j];
                e = e - (float)Tgt[s * no + j];
                loss = loss + e * e;
                acc = e * gscale;
                dY[s * no + j] = ({T})acc;
            }
        }
        losses[t] = loss * gscale * 0.5;
        for (s = 0; s < b; s = s + 1) {
            for (k = 0; k < nh; k = k + 1) {
                acc = 0.0;
                for (j = 0; j < no; j = j + 1) {
                    acc = acc + dY[s * no + j] * W2[j * nh + k];
                }
                if ((float)H[s * nh + k] > 0.0) {
                    dH[s * nh + k] = ({T})acc;
                } else {
                    dH[s * nh + k] = ({T})0.0;
                }
            }
        }
        for (j = 0; j < no; j = j + 1) {
            for (k = 0; k < nh; k = k + 1) {
                acc = 0.0;
                for (s = 0; s < b; s = s + 1) {
                    acc = acc + dY[s * no + j] * H[s * nh + k];
                }
                e = (float)W2[j * nh + k];
                e = e - lr * acc;
                W2[j * nh + k] = ({T})e;
            }
        }
        for (j = 0; j < nh; j = j + 1) {
            for (k = 0; k < ni; k = k + 1) {
                acc = 0.0;
                for (s = 0; s < b; s = s + 1) {
                    acc = acc + dH[s * nh + j] * X[s * ni + k];
                }
                e = (float)Wb[j * ni + k];
                e = e - lr * acc;
                Wb[j * ni + k] = ({T})e;
            }
        }
    }
}
"""

#: im2col + conv2d as a matmul.  The patch matrix is laid out
#: patch-major (``col[p * r + q]``) so both the im2col copy and the
#: reduction are stride-1 and auto-vectorize.
CONV2D = """
void nn_conv2d(int *dims, {T} *img, {T} *ker, {T} *col, {T} *out) {
    int c = dims[0];
    int h = dims[1];
    int w = dims[2];
    int k = dims[3];
    int f = dims[4];
    int oh = h - k + 1;
    int ow = w - k + 1;
    int npix = oh * ow;
    int r = c * k * k;
    for (int oy = 0; oy < oh; oy = oy + 1) {
        for (int ox = 0; ox < ow; ox = ox + 1) {
            int p = oy * ow + ox;
            for (int ci = 0; ci < c; ci = ci + 1) {
                for (int ky = 0; ky < k; ky = ky + 1) {
                    for (int kx = 0; kx < k; kx = kx + 1) {
                        col[p * r + ci * k * k + ky * k + kx] =
                            img[ci * h * w + (oy + ky) * w + ox + kx];
                    }
                }
            }
        }
    }
    for (int fi = 0; fi < f; fi = fi + 1) {
        for (int p = 0; p < npix; p = p + 1) {
            float acc = 0.0;
            for (int q = 0; q < r; q = q + 1) {
                acc = acc + ker[fi * r + q] * col[p * r + q];
            }
            out[fi * npix + p] = ({T})acc;
        }
    }
}
"""

#: Row-wise numerically-stable softmax (max-subtracted polynomial exp).
SOFTMAX = """
void nn_softmax(int rows, int cols, {T} *X, {T} *Y) {
    for (int i = 0; i < rows; i = i + 1) {
        float m = -30000.0;
        for (int j = 0; j < cols; j = j + 1) {
            m = __fmax_f32(m, (float)X[i * cols + j]);
        }
        float ssum = 0.0;
        for (int j = 0; j < cols; j = j + 1) {
            float z = (float)X[i * cols + j] - m;
{EXP_POLY}
            Y[i * cols + j] = ({T})p;
            ssum = ssum + p;
        }
        float inv = 1.0 / ssum;
        for (int j = 0; j < cols; j = j + 1) {
            Y[i * cols + j] = ({T})((float)Y[i * cols + j] * inv);
        }
    }
}
"""

#: Row-wise layer normalization with learned scale/shift.
LAYERNORM = """
void nn_layernorm(int rows, int cols, {T} *X, {T} *G, {T} *B, {T} *Y) {
    float invc = 1.0 / (float)cols;
    for (int i = 0; i < rows; i = i + 1) {
        float mean = 0.0;
        for (int j = 0; j < cols; j = j + 1) {
            mean = mean + X[i * cols + j];
        }
        mean = mean * invc;
        float var = 0.0;
        for (int j = 0; j < cols; j = j + 1) {
            float d = (float)X[i * cols + j] - mean;
            var = var + d * d;
        }
        var = var * invc;
        float rstd = 1.0 / __sqrt_f32(var + 0.00001);
        for (int j = 0; j < cols; j = j + 1) {
            float d = (float)X[i * cols + j] - mean;
            Y[i * cols + j] = ({T})(d * rstd * (float)G[j] + (float)B[j]);
        }
    }
}
"""

#: Single-head scaled dot-product attention: S = softmax(Q K^T * scale),
#: Y = S V.  The probability matrix is stored quantized in S (an output,
#: so attention-map QoR is scored too).
ATTENTION = """
void nn_attention(int t, int d, float scale, {T} *Q, {T} *K, {T} *V,
                  {T} *S, {T} *Y) {
    int i = 0;
    int j = 0;
    int k = 0;
    float acc = 0.0;
    float m = 0.0;
    float ssum = 0.0;
    for (i = 0; i < t; i = i + 1) {
        m = -30000.0;
        for (j = 0; j < t; j = j + 1) {
            acc = 0.0;
            for (k = 0; k < d; k = k + 1) {
                acc = acc + Q[i * d + k] * K[j * d + k];
            }
            acc = acc * scale;
            S[i * t + j] = ({T})acc;
            m = __fmax_f32(m, acc);
        }
        ssum = 0.0;
        for (j = 0; j < t; j = j + 1) {
            float z = (float)S[i * t + j] - m;
{EXP_POLY}
            S[i * t + j] = ({T})p;
            ssum = ssum + p;
        }
        for (j = 0; j < t; j = j + 1) {
            S[i * t + j] = ({T})((float)S[i * t + j] / ssum);
        }
        for (k = 0; k < d; k = k + 1) {
            acc = 0.0;
            for (j = 0; j < t; j = j + 1) {
                acc = acc + S[i * t + j] * V[j * d + k];
            }
            Y[i * d + k] = ({T})acc;
        }
    }
}
"""

_TEMPLATES = {
    "nn_mlp_fwd": MLP_FWD,
    "nn_mlp_train": MLP_TRAIN,
    "nn_conv2d": CONV2D,
    "nn_softmax": SOFTMAX,
    "nn_layernorm": LAYERNORM,
    "nn_attention": ATTENTION,
}

_MANUAL_TEMPLATES = {
    "nn_mlp_fwd": MLP_FWD_MANUAL,
}


def _expand(template: str) -> str:
    return template.replace("{EXP_POLY}", _EXP_POLY.rstrip("\n"))


def source(kernel: str, ftype: str) -> str:
    """Portable (scalar / auto-vectorizable) source for an NN kernel."""
    return _instantiate(_expand(_TEMPLATES[kernel]), ftype)


def manual_source(kernel: str, ftype: str) -> str:
    """Hand-vectorized source (smallFloat vector types only)."""
    if ftype not in _VECTOR_INFO:
        raise ValueError(f"no manual vectorization for {ftype!r}")
    return _instantiate(_expand(_MANUAL_TEMPLATES[kernel]), ftype,
                        manual=True)


#: Narrow-accumulation variant generator: the same MLP forward with the
#: accumulator held in {T} instead of binary32.  Not registered as a
#: KernelSpec -- the benchmark suite compiles it directly for the
#: expanding-vs-narrow QoR comparison.  (The decl is rewritten first so
#: its text no longer contains the plain reset pattern.)
MLP_FWD_NARROW = MLP_FWD.replace("float acc = 0.0;", "{T} acc = ({T})0.0;") \
                        .replace("acc = 0.0;", "acc = ({T})0.0;") \
                        .replace("acc = acc + (float)b1[j];",
                                 "acc = acc + b1[j];") \
                        .replace("acc = acc + (float)b2[j];",
                                 "acc = acc + b2[j];") \
                        .replace("acc = __fmax_f32(acc, 0.0);",
                                 "acc = ({T})__fmax_f32((float)acc, 0.0);") \
                        .replace("H[s * nh + j] = ({T})acc;",
                                 "H[s * nh + j] = acc;") \
                        .replace("Y[s * no + j] = ({T})acc;",
                                 "Y[s * no + j] = acc;")


def narrow_source(kernel: str, ftype: str) -> str:
    """Narrow-accumulation counterpart (accumulator quantized to {T})."""
    if kernel != "nn_mlp_fwd":
        raise ValueError(f"no narrow-accumulation variant for {kernel!r}")
    return _instantiate(_expand(MLP_FWD_NARROW), ftype)
