"""KernelSpec registrations for the NN workload suite.

Importing this module (``repro.kernels`` does it at the end of its own
import) adds the six NN kernels to :data:`repro.kernels.KERNELS`, so
they flow through every existing consumer -- the harness, the tuner,
fault campaigns, profiling, lockstep sweeps and the serve fleet --
with no further wiring.

All NN specs carry ``compile_opts={'expanding_reductions': True}``:
in ``mode='auto'`` their binary32-accumulator reduction loops compile
to ``vfdotpex.s.*`` instead of the multiply-then-unpack fallback.
"""

from __future__ import annotations

from ..kernels import ArgSpec, KernelSpec, _register
from . import data as _data
from . import golden as _golden
from . import sources as _sources

_EXPANDING = {"expanding_reductions": True}

NN_MLP_FWD = _register(KernelSpec(
    name="nn_mlp_fwd",
    entry="nn_mlp_fwd",
    params={"b": 4, "ni": 8, "nh": 8, "no": 4},
    args=[
        ArgSpec("b", "param"),
        ArgSpec("ni", "param"),
        ArgSpec("nh", "param"),
        ArgSpec("no", "param"),
        ArgSpec("X", "array"),
        ArgSpec("Wb", "array"),
        ArgSpec("H", "array"),
        ArgSpec("Y", "array"),
    ],
    outputs=["H", "Y"],
    make_data=_data.make_mlp_fwd_data,
    golden=_golden.mlp_fwd_ref,
    source_fn=lambda t: _sources.source("nn_mlp_fwd", t),
    manual_source_fn=lambda t: _sources.manual_source("nn_mlp_fwd", t),
    compile_opts=_EXPANDING,
))

NN_MLP_TRAIN = _register(KernelSpec(
    name="nn_mlp_train",
    entry="nn_mlp_train",
    params={"b": 4, "ni": 8, "nh": 8, "no": 4, "steps": 3},
    args=[
        ArgSpec("dims", "iarray"),
        ArgSpec("lr", "scalar", elem="float"),
        ArgSpec("X", "array"),
        ArgSpec("Tgt", "array"),
        ArgSpec("Wb", "array"),
        ArgSpec("losses", "array", elem="float"),
        ArgSpec("S", "array"),
    ],
    outputs=["Wb", "losses"],
    make_data=_data.make_mlp_train_data,
    golden=_golden.mlp_train_ref,
    source_fn=lambda t: _sources.source("nn_mlp_train", t),
    compile_opts=_EXPANDING,
))

NN_CONV2D = _register(KernelSpec(
    name="nn_conv2d",
    entry="nn_conv2d",
    params={"c": 2, "h": 6, "w": 6, "k": 3, "f": 2},
    args=[
        ArgSpec("dims", "iarray"),
        ArgSpec("img", "array"),
        ArgSpec("ker", "array"),
        ArgSpec("col", "array"),
        ArgSpec("out", "array"),
    ],
    outputs=["out"],
    make_data=_data.make_conv2d_data,
    golden=_golden.conv2d_ref,
    source_fn=lambda t: _sources.source("nn_conv2d", t),
    compile_opts=_EXPANDING,
))

NN_SOFTMAX = _register(KernelSpec(
    name="nn_softmax",
    entry="nn_softmax",
    params={"rows": 6, "cols": 8},
    args=[
        ArgSpec("rows", "param"),
        ArgSpec("cols", "param"),
        ArgSpec("X", "array"),
        ArgSpec("Y", "array"),
    ],
    outputs=["Y"],
    make_data=_data.make_softmax_data,
    golden=_golden.softmax_ref,
    source_fn=lambda t: _sources.source("nn_softmax", t),
    compile_opts=_EXPANDING,
))

NN_LAYERNORM = _register(KernelSpec(
    name="nn_layernorm",
    entry="nn_layernorm",
    params={"rows": 6, "cols": 8},
    args=[
        ArgSpec("rows", "param"),
        ArgSpec("cols", "param"),
        ArgSpec("X", "array"),
        ArgSpec("G", "array"),
        ArgSpec("B", "array"),
        ArgSpec("Y", "array"),
    ],
    outputs=["Y"],
    make_data=_data.make_layernorm_data,
    golden=_golden.layernorm_ref,
    source_fn=lambda t: _sources.source("nn_layernorm", t),
    compile_opts=_EXPANDING,
))

NN_ATTENTION = _register(KernelSpec(
    name="nn_attention",
    entry="nn_attention",
    params={"t": 4, "d": 8},
    args=[
        ArgSpec("t", "param"),
        ArgSpec("d", "param"),
        ArgSpec("scale", "scalar", elem="float"),
        ArgSpec("Q", "array"),
        ArgSpec("K", "array"),
        ArgSpec("V", "array"),
        ArgSpec("S", "array"),
        ArgSpec("Y", "array"),
    ],
    outputs=["S", "Y"],
    make_data=_data.make_attention_data,
    golden=_golden.attention_ref,
    source_fn=lambda t: _sources.source("nn_attention", t),
    compile_opts=_EXPANDING,
))

#: The NN workload suite, in presentation order.
NN_KERNEL_NAMES = [
    "nn_mlp_fwd",
    "nn_mlp_train",
    "nn_conv2d",
    "nn_softmax",
    "nn_layernorm",
    "nn_attention",
]
