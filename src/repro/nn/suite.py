"""The NN-suite QoR benchmark: one deterministic payload, committed.

:func:`compute_nn_suite` produces ``benchmarks/results/nn_suite.json``
(via ``benchmarks/bench_nn_suite.py``); ``tests/nn/test_suite_baseline``
re-computes it and fails on any drift.  Sections:

``qor``
    SQNR and retired-instruction count for every NN kernel over every
    kernel-capable format, scalar and auto-vectorized.
``expanding_vs_narrow``
    MLP forward with binary32 expanding accumulation vs the same kernel
    accumulating in the narrow format -- the paper's core claim, which
    must hold (positive delta) for every 8-bit format.
``sr_vs_rne``
    MLP training loss-trajectory divergence from the binary32 run,
    round-to-nearest vs stochastic rounding averaged over lane keys.
``fused_block``
    The ``vfdotpmx`` fused-block route on MX8.
``differential``
    Scalar solo runs vs the batched lockstep engine, which must retire
    bit-identical outputs per lane.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

import numpy as np

from ..fp.rounding import RoundingMode
from ..kernels import KERNELS
from ..metrics import loss_divergence
from . import sources
from .block import BLOCK_KERNELS, run_fused_block
from .specs import NN_KERNEL_NAMES

#: Formats the QoR sweep covers (every kernel-capable keyword).
QOR_FTYPES = ("float", "float16", "float16alt", "float8",
              "posit8", "posit16")

#: 8-bit formats for the expanding-vs-narrow comparison (plus the
#: 16-bit ones, reported for context).
NARROW_FTYPES = ("float8", "posit8", "float16", "float16alt")

#: Sub-32-bit training formats for the SR-vs-RNE comparison.
SR_FTYPES = ("float8", "posit8", "float16alt", "float16")

#: Lane keys averaged for the stochastic-rounding leg.
SR_KEYS = (1, 2, 3)

#: Training length for the loss-trajectory comparison.
SR_STEPS = 8

#: Seeds (= lockstep lanes) for the differential section.
DIFF_SEEDS = (0, 1, 2)


def _round(value: float) -> float:
    return round(float(value), 4)


def compute_nn_suite() -> Dict:
    from ..harness.runner import run_kernel, run_kernel_batch

    payload: Dict = {"kernels": list(NN_KERNEL_NAMES)}

    qor = {}
    for name in NN_KERNEL_NAMES:
        spec = KERNELS[name]
        for ftype in QOR_FTYPES:
            for mode in ("scalar", "auto"):
                run = run_kernel(spec, ftype, mode)
                qor[f"{name}/{ftype}/{mode}"] = {
                    "sqnr_db": _round(run.sqnr_db()),
                    "instret": int(run.trace.instret),
                }
    payload["qor"] = qor

    spec = KERNELS["nn_mlp_fwd"]
    narrow_spec = dataclasses.replace(
        spec,
        source_fn=lambda t: sources.narrow_source("nn_mlp_fwd", t),
        manual_source_fn=None, compile_opts={})
    evn = {}
    for ftype in NARROW_FTYPES:
        wide = run_kernel(spec, ftype, "scalar")
        narrow = run_kernel(narrow_spec, ftype, "scalar")
        evn[ftype] = {
            "expanding_db": _round(wide.sqnr_db()),
            "narrow_db": _round(narrow.sqnr_db()),
            "delta_db": _round(wide.sqnr_db() - narrow.sqnr_db()),
        }
    payload["expanding_vs_narrow"] = evn

    train = KERNELS["nn_mlp_train"]
    params = dict(train.params, steps=SR_STEPS)
    ref = run_kernel(train, "float", "scalar", params=params)
    ref_losses = ref.outputs["losses"]
    sr = {}
    for ftype in SR_FTYPES:
        rne = run_kernel(train, ftype, "scalar", params=params)
        rne_div = loss_divergence(ref_losses, rne.outputs["losses"])
        divs = []
        for key in SR_KEYS:
            run = run_kernel(train, ftype, "scalar", params=params,
                             frm=int(RoundingMode.SR), sr_key=key)
            divs.append(loss_divergence(ref_losses, run.outputs["losses"]))
        mean = float(np.mean(divs))
        sr[ftype] = {
            "steps": SR_STEPS,
            "rne_divergence": _round(rne_div),
            "sr_divergence_mean": _round(mean),
            "sr_keys": list(SR_KEYS),
            "improves": bool(mean < rne_div),
        }
    payload["sr_vs_rne"] = sr

    fused = {}
    for name in BLOCK_KERNELS:
        run = run_fused_block(name, "mx8")
        fused[name] = {
            "sqnr_db": _round(run.sqnr_db()),
            "per_output": {out: _round(db)
                           for out, db in sorted(run.sqnr.items())},
            "dotp_count": int(run.dotp_count),
            "instret": int(run.instret),
        }
    payload["fused_block"] = fused

    diff = {}
    for name in NN_KERNEL_NAMES:
        spec = KERNELS[name]
        batch = run_kernel_batch(spec, "float8", "scalar",
                                 seeds=list(DIFF_SEEDS))
        identical = True
        for seed, lane in zip(DIFF_SEEDS, batch):
            solo = run_kernel(spec, "float8", "scalar", seed=seed)
            for out in spec.outputs:
                if not np.array_equal(solo.outputs[out], lane.outputs[out]):
                    identical = False
        diff[name] = {"lanes": len(DIFF_SEEDS),
                      "bit_identical": identical}
    payload["differential"] = diff

    return payload
