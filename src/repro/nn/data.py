"""Deterministic workload generators for the NN kernel suite.

Same conventions as :mod:`repro.kernels.data`: binary64 arrays, scaled
so even binary8 (1-5-2) stays in range -- activations in [-1, 1] and
weights divided by sqrt(fan-in), the usual init scale, which also keeps
partial dot products representable.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..kernels.data import _uniform


def _pack_mlp(rng: np.random.Generator, ni: int, nh: int, no: int):
    """Pack (W1 | b1 | W2 | b2) into one buffer, output-major weights."""
    w1 = _uniform(rng, (nh, ni)) / np.sqrt(ni)
    b1 = _uniform(rng, nh, -0.1, 0.1)
    w2 = _uniform(rng, (no, nh)) / np.sqrt(nh)
    b2 = _uniform(rng, no, -0.1, 0.1)
    return np.concatenate([w1.ravel(), b1, w2.ravel(), b2])


def make_mlp_fwd_data(params: Dict[str, int], rng: np.random.Generator):
    b, ni = params["b"], params["ni"]
    nh, no = params["nh"], params["no"]
    return {
        "X": _uniform(rng, (b, ni)),
        "Wb": _pack_mlp(rng, ni, nh, no),
        "H": np.zeros(b * nh),
        "Y": np.zeros(b * no),
    }


def make_mlp_train_data(params: Dict[str, int], rng: np.random.Generator):
    b, ni = params["b"], params["ni"]
    nh, no = params["nh"], params["no"]
    steps = params["steps"]
    # The training net is bias-free: Wb packs W1 | W2 only.
    w1 = _uniform(rng, (nh, ni)) / np.sqrt(ni)
    w2 = _uniform(rng, (no, nh)) / np.sqrt(nh)
    return {
        "dims": np.array([b, ni, nh, no, steps], dtype=np.int64),
        "lr": 0.05,
        "X": _uniform(rng, (b, ni)),
        "Tgt": _uniform(rng, (b, no)),
        "Wb": np.concatenate([w1.ravel(), w2.ravel()]),
        "losses": np.zeros(steps),
        "S": np.zeros(2 * b * (nh + no)),  # H | Y | dY | dH scratch
    }


def make_conv2d_data(params: Dict[str, int], rng: np.random.Generator):
    c, h, w = params["c"], params["h"], params["w"]
    k, f = params["k"], params["f"]
    oh, ow = h - k + 1, w - k + 1
    r = c * k * k
    return {
        "dims": np.array([c, h, w, k, f], dtype=np.int64),
        "img": _uniform(rng, (c, h, w)),
        "ker": _uniform(rng, (f, r)) / np.sqrt(r),
        "col": np.zeros(oh * ow * r),
        "out": np.zeros(f * oh * ow),
    }


def make_softmax_data(params: Dict[str, int], rng: np.random.Generator):
    rows, cols = params["rows"], params["cols"]
    return {
        "X": _uniform(rng, (rows, cols), -4.0, 4.0),  # logit range
        "Y": np.zeros(rows * cols),
    }


def make_layernorm_data(params: Dict[str, int], rng: np.random.Generator):
    rows, cols = params["rows"], params["cols"]
    return {
        "X": _uniform(rng, (rows, cols), -2.0, 2.0),
        "G": _uniform(rng, cols, 0.5, 1.5),
        "B": _uniform(rng, cols, -0.5, 0.5),
        "Y": np.zeros(rows * cols),
    }


def make_attention_data(params: Dict[str, int], rng: np.random.Generator):
    t, d = params["t"], params["d"]
    return {
        "scale": 1.0 / np.sqrt(d),
        "Q": _uniform(rng, (t, d)),
        "K": _uniform(rng, (t, d)),
        "V": _uniform(rng, (t, d)),
        "S": np.zeros(t * t),
        "Y": np.zeros(t * d),
    }
