"""Binary64 numpy references for the NN kernels.

Each reference replicates its kernel's *algorithm* exactly -- including
the polynomial exp and the backward-pass update order -- on unquantized
binary64 data, so QoR deltas measure number-format rounding alone.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


def _exp_poly(z: np.ndarray) -> np.ndarray:
    """The kernels' ``exp``: degree-4 Taylor core on z/8, then cubed
    squarings back up (``(poly(z/8))**8``).  Matches the kernel source
    coefficient-for-coefficient."""
    u = z * 0.125
    p = 1.0 + u * (1.0 + u * (0.5 + u * (0.16666667 + u * 0.041666667)))
    return p ** 8


def _unpack_mlp(wb: np.ndarray, ni: int, nh: int, no: int):
    """Views into the packed (W1 | b1 | W2 | b2) buffer."""
    o = 0
    w1 = wb[o:o + ni * nh].reshape(nh, ni)
    o += ni * nh
    b1 = wb[o:o + nh]
    o += nh
    w2 = wb[o:o + nh * no].reshape(no, nh)
    o += nh * no
    b2 = wb[o:o + no]
    return w1, b1, w2, b2


def mlp_fwd_ref(data: Dict, params: Dict) -> Dict[str, np.ndarray]:
    """H = relu(X W1^T + b1); Y = H W2^T + b2."""
    ni, nh, no = params["ni"], params["nh"], params["no"]
    w1, b1, w2, b2 = _unpack_mlp(data["Wb"], ni, nh, no)
    x = data["X"]
    h = np.maximum(x @ w1.T + b1, 0.0)
    y = h @ w2.T + b2
    return {"H": h.ravel(), "Y": y.ravel()}


def mlp_train_ref(data: Dict, params: Dict) -> Dict[str, np.ndarray]:
    """``steps`` epochs of forward / MSE / backward / SGD on one batch
    of the bias-free two-layer net (Wb packs W1 | W2)."""
    b, ni = params["b"], params["ni"]
    nh, no = params["nh"], params["no"]
    steps = params["steps"]
    lr = data["lr"]
    x, tgt = data["X"], data["Tgt"]
    wb = data["Wb"].copy()
    w1 = wb[:ni * nh].reshape(nh, ni)
    w2 = wb[ni * nh:].reshape(no, nh)
    losses = np.zeros(steps)
    gscale = 2.0 / (b * no)
    for t in range(steps):
        h = np.maximum(x @ w1.T, 0.0)
        y = h @ w2.T
        e = y - tgt
        losses[t] = np.sum(e * e) / (b * no)
        d_y = e * gscale
        d_h = (d_y @ w2) * (h > 0.0)  # pre-update W2, as in the kernel
        w2 -= lr * (d_y.T @ h)
        w1 -= lr * (d_h.T @ x)
    return {"Wb": wb, "losses": losses}


def conv2d_ref(data: Dict, params: Dict) -> Dict[str, np.ndarray]:
    """im2col (patch-major) then out = ker @ col^T."""
    c, h, w = params["c"], params["h"], params["w"]
    k, f = params["k"], params["f"]
    oh, ow = h - k + 1, w - k + 1
    img = data["img"].reshape(c, h, w)
    ker = data["ker"].reshape(f, c * k * k)
    col = np.zeros((oh * ow, c * k * k))
    for oy in range(oh):
        for ox in range(ow):
            col[oy * ow + ox] = img[:, oy:oy + k, ox:ox + k].ravel()
    out = ker @ col.T
    return {"out": out.ravel()}


def softmax_ref(data: Dict, params: Dict) -> Dict[str, np.ndarray]:
    """Row-wise max-subtracted polynomial-exp softmax."""
    x = data["X"]
    e = _exp_poly(x - x.max(axis=1, keepdims=True))
    return {"Y": (e / e.sum(axis=1, keepdims=True)).ravel()}


def layernorm_ref(data: Dict, params: Dict) -> Dict[str, np.ndarray]:
    """Row-wise normalization with learned scale/shift (biased var)."""
    x = data["X"]
    mean = x.mean(axis=1, keepdims=True)
    var = np.mean((x - mean) ** 2, axis=1, keepdims=True)
    y = (x - mean) / np.sqrt(var + 1e-5) * data["G"] + data["B"]
    return {"Y": y.ravel()}


def attention_ref(data: Dict, params: Dict) -> Dict[str, np.ndarray]:
    """S = softmax(Q K^T * scale); Y = S V."""
    t, d = params["t"], params["d"]
    q = data["Q"].reshape(t, d)
    k = data["K"].reshape(t, d)
    v = data["V"].reshape(t, d)
    s = q @ k.T * data["scale"]
    e = _exp_poly(s - s.max(axis=1, keepdims=True))
    p = e / e.sum(axis=1, keepdims=True)
    return {"S": p.ravel(), "Y": (p @ v).ravel()}
