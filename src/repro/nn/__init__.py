"""repro.nn: low-precision neural-network workload suite.

Six NN kernels -- MLP forward, MLP training (forward + backward + SGD),
im2col conv2d, softmax, layernorm and single-head attention -- written
in the repro kernel language with smallFloat data and binary32
expanding accumulation, registered as :class:`repro.kernels.KernelSpec`
entries so they run through every harness surface (tuning, faults,
profiling, lockstep sweeps, serving).

Compiled in ``mode='auto'`` the suite's reduction loops emit
``vfdotpex.s.*`` (``compile_opts={'expanding_reductions': True}``);
block formats additionally get the fused-block ``vfdotpmx`` route via
:func:`run_fused_block`.  Stochastic rounding is available everywhere
through ``run_kernel(..., frm=int(RoundingMode.SR), sr_key=...)``.
"""

from . import specs as _specs  # noqa: F401  (registers the NN kernels)
from .block import (BLOCK_KERNELS, BlockFormatError, BlockRun,
                    fused_block_kernels, run_fused_block)
from .sources import manual_source, narrow_source, source
from .specs import (NN_ATTENTION, NN_CONV2D, NN_KERNEL_NAMES, NN_LAYERNORM,
                    NN_MLP_FWD, NN_MLP_TRAIN, NN_SOFTMAX)

__all__ = [
    "BLOCK_KERNELS",
    "BlockFormatError",
    "BlockRun",
    "NN_ATTENTION",
    "NN_CONV2D",
    "NN_KERNEL_NAMES",
    "NN_LAYERNORM",
    "NN_MLP_FWD",
    "NN_MLP_TRAIN",
    "NN_SOFTMAX",
    "fused_block_kernels",
    "manual_source",
    "narrow_source",
    "run_fused_block",
    "source",
]
