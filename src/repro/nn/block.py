"""Fused-block execution of NN kernels (``vfdotpmx.s.mx``).

Block formats (``has_block_dotp``, e.g. MX8) pack a shared-exponent
block into one register word, so their dot products cannot be expressed
through the scalar smallFloat load/compute path the portable kernel
sources use.  This module provides the fused-block route instead: the
dot-product stages of a supported NN kernel run *in the simulator*
through a dense microkernel built on the ``__dotpmx`` intrinsic (one
``vfdotpmx.s.mx`` per block pair, binary32 expanding accumulation),
with operands quantized host-side via :func:`repro.fp.mx.quantize_block`
and the remaining element-wise stages (bias, relu, softmax) computed on
the host reference path.

Requesting a fused-block run for a format without block support raises
the structured :class:`BlockFormatError` -- the same error the CLI and
serve layer surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from .. import ReproError
from ..compiler import compile_source
from ..fp import registry
from ..fp.mx import BLOCK_LANES, quantize_block
from ..fp.rounding import RoundingMode, set_sr_key
from ..kernels import KERNELS
from ..metrics import sqnr_db
from ..sim import Simulator
from .golden import _exp_poly

#: NN kernels with a fused-block execution path (their heavy stage is a
#: dense dot product; softmax/layernorm are element-wise and gain
#: nothing from a block dot product).
BLOCK_KERNELS = ("nn_mlp_fwd", "nn_conv2d", "nn_attention")

#: The block-dense microkernel: Y[i, j] = row_i(Wq) . row_j(Xq), where
#: Wq/Xq hold packed block words (opaque 32-bit patterns staged as
#: binary32) and each ``__dotpmx`` call fuses one block pair into the
#: binary32 accumulator with a single rounding.
_DENSE_SRC = """
void nn_dense_blk(int rows, int cols, int nblk, float *Wq, float *Xq,
                  float *Y) {
    for (int i = 0; i < rows; i = i + 1) {
        for (int j = 0; j < cols; j = j + 1) {
            float acc = 0.0;
            for (int k = 0; k < nblk; k = k + 1) {
                acc = __dotpmx(acc, Wq[i * nblk + k], Xq[j * nblk + k]);
            }
            Y[i * cols + j] = acc;
        }
    }
}
"""

_ARRAY_BASE = 0x0020_0000


class BlockFormatError(ReproError):
    """A fused-block run was requested for an unsupported combination."""

    def __init__(self, kernel: str, ftype: str, reason: str):
        super().__init__(
            f"cannot run {kernel!r} fused-block on {ftype!r}: {reason}")
        self.kernel = kernel
        self.ftype = ftype
        self.reason = reason


def fused_block_kernels(keyword: str) -> tuple:
    """NN kernels the given format keyword can run fused-block."""
    try:
        fmt = registry.by_keyword(keyword)
    except registry.FormatLookupError:
        return ()
    return BLOCK_KERNELS if fmt.has_block_dotp else ()


def _quantize_rows(mat: np.ndarray, rm: RoundingMode) -> np.ndarray:
    """Quantize each row into packed block words (zero-padded tail)."""
    rows, n = mat.shape
    nblk = -(-n // BLOCK_LANES)
    words = np.zeros((rows, nblk), dtype="<u4")
    for i in range(rows):
        for b in range(nblk):
            chunk = mat[i, b * BLOCK_LANES:(b + 1) * BLOCK_LANES]
            words[i, b] = quantize_block([float(v) for v in chunk], rm)
    return words


@dataclass
class BlockRun:
    """Result of one fused-block NN kernel execution."""

    kernel: str
    ftype: str
    outputs: Dict[str, np.ndarray]
    golden: Dict[str, np.ndarray]
    instret: int = 0
    #: ``vfdotpmx`` count across all dense stages.
    dotp_count: int = 0
    sqnr: Dict[str, float] = field(default_factory=dict)

    def sqnr_db(self, output: Optional[str] = None) -> float:
        names = [output] if output else sorted(self.outputs)
        ref = np.concatenate([np.ravel(self.golden[n]) for n in names])
        got = np.concatenate([np.ravel(self.outputs[n]) for n in names])
        return sqnr_db(ref, got)


class _DenseEngine:
    """Compiles the microkernel once and runs dense products on demand."""

    def __init__(self, frm: int = 0, sr_key: int = 0):
        self.kernel = compile_source(_DENSE_SRC)
        self.frm = frm
        self.sr_key = sr_key
        self.instret = 0
        self.dotp_count = 0

    def matmul(self, a: np.ndarray, b: np.ndarray,
               rm: RoundingMode) -> np.ndarray:
        """Y[i, j] = row_i(a) . row_j(b) via in-sim ``vfdotpmx``."""
        aw = _quantize_rows(np.asarray(a, dtype=np.float64), rm)
        bw = _quantize_rows(np.asarray(b, dtype=np.float64), rm)
        rows, nblk = aw.shape
        cols = bw.shape[0]
        base_a = _ARRAY_BASE
        base_b = base_a + ((aw.size * 4 + 15) // 16) * 16 + 16
        base_y = base_b + ((bw.size * 4 + 15) // 16) * 16 + 16
        sim = Simulator(self.kernel.program)
        sim.machine.memory.write_block(base_a, aw.tobytes())
        sim.machine.memory.write_block(base_b, bw.tobytes())
        sim.machine.csr.frm = self.frm
        regs = {10: rows, 11: cols, 12: nblk,
                13: base_a, 14: base_b, 15: base_y}
        prev = set_sr_key(self.sr_key)
        try:
            result = sim.run("nn_dense_blk", args=regs,
                             max_instructions=50_000_000)
        finally:
            set_sr_key(prev)
        if not result.ok:
            raise BlockFormatError("nn_dense_blk", "mx8",
                                   f"guest {result.exit_reason}")
        self.instret += result.trace.instret
        self.dotp_count += rows * cols * nblk
        raw = sim.machine.memory.read_block(base_y, rows * cols * 4)
        return np.frombuffer(raw, dtype="<u4").copy().view(
            np.float32).astype(np.float64).reshape(rows, cols)


def run_fused_block(
    kernel: str,
    ftype: str = "mx8",
    seed: int = 0,
    params: Optional[Dict[str, int]] = None,
    rm: RoundingMode = RoundingMode.RNE,
    frm: int = 0,
    sr_key: int = 0,
) -> BlockRun:
    """Run one NN kernel in fused-block mode on a block format.

    ``rm`` rounds the host-side block quantization; ``frm``/``sr_key``
    control the in-simulator ``vfdotpmx`` accumulation rounding (pass
    ``int(RoundingMode.SR)`` for stochastic accumulate).
    """
    try:
        fmt = registry.by_keyword(ftype)
    except registry.FormatLookupError:
        raise BlockFormatError(kernel, ftype, "unknown format keyword")
    if not fmt.has_block_dotp:
        raise BlockFormatError(
            kernel, ftype,
            "format has no block dot product (has_block_dotp=False); "
            "use the scalar/auto/manual modes instead")
    if kernel not in BLOCK_KERNELS:
        raise BlockFormatError(
            kernel, ftype,
            f"no fused-block path (supported: {', '.join(BLOCK_KERNELS)})")

    spec = KERNELS[kernel]
    run_params = dict(spec.params)
    run_params.update(params or {})
    rng = np.random.default_rng(seed)
    data = spec.make_data(run_params, rng)
    golden = spec.golden(data, run_params)
    engine = _DenseEngine(frm=frm, sr_key=sr_key)

    if kernel == "nn_mlp_fwd":
        ni, nh, no = run_params["ni"], run_params["nh"], run_params["no"]
        from .golden import _unpack_mlp

        w1, b1, w2, b2 = _unpack_mlp(data["Wb"], ni, nh, no)
        x = np.asarray(data["X"], dtype=np.float64)
        h = np.maximum(engine.matmul(x, w1, rm) + b1, 0.0)
        y = engine.matmul(h, w2, rm) + b2
        outputs = {"H": h.ravel(), "Y": y.ravel()}
    elif kernel == "nn_conv2d":
        c, h_, w_ = run_params["c"], run_params["h"], run_params["w"]
        k, f = run_params["k"], run_params["f"]
        oh, ow = h_ - k + 1, w_ - k + 1
        img = data["img"].reshape(c, h_, w_)
        ker = data["ker"].reshape(f, c * k * k)
        col = np.zeros((oh * ow, c * k * k))
        for oy in range(oh):
            for ox in range(ow):
                col[oy * ow + ox] = img[:, oy:oy + k, ox:ox + k].ravel()
        outputs = {"out": engine.matmul(ker, col, rm).ravel()}
    else:  # nn_attention
        t, d = run_params["t"], run_params["d"]
        q = data["Q"].reshape(t, d)
        kk = data["K"].reshape(t, d)
        v = data["V"].reshape(t, d)
        s = engine.matmul(q, kk, rm) * data["scale"]
        e = _exp_poly(s - s.max(axis=1, keepdims=True))
        p = e / e.sum(axis=1, keepdims=True)
        y = engine.matmul(p, v.T, rm)
        outputs = {"S": p.ravel(), "Y": y.ravel()}

    run = BlockRun(kernel=kernel, ftype=ftype, outputs=outputs,
                   golden=golden, instret=engine.instret,
                   dotp_count=engine.dotp_count)
    run.sqnr = {name: sqnr_db(np.ravel(golden[name]), np.ravel(arr))
                for name, arr in outputs.items()}
    return run
